#include "exec/operators.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <unordered_map>

namespace bih {

Rows ScanAll(TemporalEngine& engine, const ScanRequest& req) {
  Rows out;
  engine.Scan(req, [&](const Row& row) {
    out.push_back(row);
    return true;
  });
  return out;
}

Rows FilterRows(const Rows& in, const ExprPtr& pred, QueryContext* ctx) {
  Rows out;
  for (const Row& row : in) {
    if (ctx != nullptr && !ctx->KeepGoing()) return out;
    if (pred->Test(row)) out.push_back(row);
  }
  return out;
}

Rows ProjectRows(const Rows& in, const std::vector<ExprPtr>& exprs,
                 QueryContext* ctx) {
  Rows out;
  out.reserve(in.size());
  for (const Row& row : in) {
    if (ctx != nullptr && !ctx->KeepGoing()) return out;
    Row r;
    r.reserve(exprs.size());
    for (const ExprPtr& e : exprs) r.push_back(e->Eval(row));
    out.push_back(std::move(r));
  }
  return out;
}

namespace {

struct RowKeyHash {
  size_t operator()(const Row& key) const {
    size_t h = 0x345678;
    for (const Value& v : key) h = h * 1000003ULL ^ v.Hash();
    return h;
  }
};
struct RowKeyEq {
  bool operator()(const Row& a, const Row& b) const {
    if (a.size() != b.size()) return false;
    for (size_t i = 0; i < a.size(); ++i) {
      if (a[i].Compare(b[i]) != 0) return false;
    }
    return true;
  }
};

Row KeyOf(const Row& row, const std::vector<int>& cols) {
  Row key;
  key.reserve(cols.size());
  for (int c : cols) key.push_back(row[static_cast<size_t>(c)]);
  return key;
}

}  // namespace

Rows HashJoinRows(const Rows& left, const Rows& right,
                  const std::vector<int>& left_keys,
                  const std::vector<int>& right_keys, size_t right_width,
                  JoinType type, const ExprPtr& residual, QueryContext* ctx) {
  BIH_CHECK(left_keys.size() == right_keys.size());
  std::unordered_map<Row, std::vector<const Row*>, RowKeyHash, RowKeyEq> ht;
  ht.reserve(right.size());
  for (const Row& r : right) {
    if (ctx != nullptr && !ctx->KeepGoing()) return {};
    Row key = KeyOf(r, right_keys);
    bool null_key = false;
    for (const Value& v : key) null_key |= v.is_null();
    if (null_key) continue;  // NULL never matches in equi-joins
    ht[std::move(key)].push_back(&r);
  }
  Rows out;
  for (const Row& l : left) {
    if (ctx != nullptr && !ctx->KeepGoing()) return out;
    Row key = KeyOf(l, left_keys);
    bool null_key = false;
    for (const Value& v : key) null_key |= v.is_null();
    auto it = null_key ? ht.end() : ht.find(key);
    bool matched = false;
    if (it != ht.end()) {
      for (const Row* r : it->second) {
        Row joined = l;
        joined.insert(joined.end(), r->begin(), r->end());
        if (residual != nullptr && !residual->Test(joined)) continue;
        matched = true;
        out.push_back(std::move(joined));
      }
    }
    if (!matched && type == JoinType::kLeftOuter) {
      Row joined = l;
      joined.resize(joined.size() + right_width, Value::Null());
      out.push_back(std::move(joined));
    }
  }
  return out;
}

Rows MergeJoinRows(Rows left, Rows right, const std::vector<int>& left_keys,
                   const std::vector<int>& right_keys, const ExprPtr& residual,
                   QueryContext* ctx) {
  BIH_CHECK(left_keys.size() == right_keys.size());
  auto cmp_keys = [](const Row& a, const std::vector<int>& acols, const Row& b,
                     const std::vector<int>& bcols) {
    for (size_t i = 0; i < acols.size(); ++i) {
      int c = a[static_cast<size_t>(acols[i])].Compare(
          b[static_cast<size_t>(bcols[i])]);
      if (c != 0) return c;
    }
    return 0;
  };
  std::sort(left.begin(), left.end(), [&](const Row& a, const Row& b) {
    return cmp_keys(a, left_keys, b, left_keys) < 0;
  });
  std::sort(right.begin(), right.end(), [&](const Row& a, const Row& b) {
    return cmp_keys(a, right_keys, b, right_keys) < 0;
  });
  Rows out;
  size_t li = 0, ri = 0;
  while (li < left.size() && ri < right.size()) {
    if (ctx != nullptr && !ctx->KeepGoing()) return out;
    int c = cmp_keys(left[li], left_keys, right[ri], right_keys);
    if (c < 0) {
      ++li;
      continue;
    }
    if (c > 0) {
      ++ri;
      continue;
    }
    // Find the equal-key runs on both sides.
    size_t lend = li + 1, rend = ri + 1;
    while (lend < left.size() &&
           cmp_keys(left[lend], left_keys, left[li], left_keys) == 0) {
      ++lend;
    }
    while (rend < right.size() &&
           cmp_keys(right[rend], right_keys, right[ri], right_keys) == 0) {
      ++rend;
    }
    // NULL keys never join.
    bool null_key = false;
    for (int k : left_keys) {
      null_key |= left[li][static_cast<size_t>(k)].is_null();
    }
    if (!null_key) {
      for (size_t i = li; i < lend; ++i) {
        for (size_t j = ri; j < rend; ++j) {
          Row joined = left[i];
          joined.insert(joined.end(), right[j].begin(), right[j].end());
          if (residual != nullptr && !residual->Test(joined)) continue;
          out.push_back(std::move(joined));
        }
      }
    }
    li = lend;
    ri = rend;
  }
  return out;
}

Rows IndexNestedLoopJoin(TemporalEngine& engine, const Rows& left,
                         const std::vector<int>& left_keys,
                         const std::string& table,
                         const std::vector<int>& table_keys,
                         const TemporalScanSpec& spec, const ExprPtr& residual,
                         QueryContext* ctx) {
  BIH_CHECK(left_keys.size() == table_keys.size());
  Rows out;
  ExecStats probe_stats;
  for (const Row& l : left) {
    if (ctx != nullptr && !ctx->KeepGoing()) return out;
    ScanRequest req;
    req.table = table;
    req.temporal = spec;
    req.ctx = ctx;
    // Inner probes must not clobber the engine's shared last_stats() slot
    // when running under a concurrent session.
    if (ctx != nullptr) req.stats = &probe_stats;
    bool null_key = false;
    for (size_t i = 0; i < left_keys.size(); ++i) {
      const Value& v = l[static_cast<size_t>(left_keys[i])];
      null_key |= v.is_null();
      req.equals.emplace_back(table_keys[i], v);
    }
    if (null_key) continue;
    engine.Scan(req, [&](const Row& r) {
      Row joined = l;
      joined.insert(joined.end(), r.begin(), r.end());
      if (residual == nullptr || residual->Test(joined)) {
        out.push_back(std::move(joined));
      }
      return true;
    });
  }
  return out;
}

namespace {

struct AggState {
  double sum = 0.0;
  int64_t count = 0;
  bool has = false;
  Value min, max;
  std::set<std::string> distinct;
};

}  // namespace

Rows HashAggregateRows(const Rows& in, const std::vector<int>& group_cols,
                       const std::vector<AggSpec>& aggs, QueryContext* ctx) {
  std::unordered_map<Row, std::vector<AggState>, RowKeyHash, RowKeyEq> groups;
  std::vector<Row> group_order;  // deterministic output order (first seen)
  for (const Row& row : in) {
    if (ctx != nullptr && !ctx->KeepGoing()) return {};
    Row key = KeyOf(row, group_cols);
    auto it = groups.find(key);
    if (it == groups.end()) {
      it = groups.emplace(key, std::vector<AggState>(aggs.size())).first;
      group_order.push_back(key);
    }
    std::vector<AggState>& st = it->second;
    for (size_t i = 0; i < aggs.size(); ++i) {
      const AggSpec& a = aggs[i];
      if (a.kind == AggKind::kCount && a.expr == nullptr) {
        ++st[i].count;
        continue;
      }
      Value v = a.expr->Eval(row);
      if (v.is_null()) continue;  // SQL aggregates skip NULLs
      AggState& s = st[i];
      switch (a.kind) {
        case AggKind::kSum:
        case AggKind::kAvg:
          s.sum += v.AsDouble();
          ++s.count;
          break;
        case AggKind::kCount:
          ++s.count;
          break;
        case AggKind::kMin:
          if (!s.has || v.Compare(s.min) < 0) s.min = v;
          s.has = true;
          break;
        case AggKind::kMax:
          if (!s.has || v.Compare(s.max) > 0) s.max = v;
          s.has = true;
          break;
        case AggKind::kCountDistinct:
          s.distinct.insert(v.ToString());
          break;
      }
    }
  }
  if (group_cols.empty() && groups.empty()) {
    groups.emplace(Row{}, std::vector<AggState>(aggs.size()));
    group_order.push_back(Row{});
  }
  Rows out;
  out.reserve(group_order.size());
  for (const Row& key : group_order) {
    const std::vector<AggState>& st = groups[key];
    Row r = key;
    for (size_t i = 0; i < aggs.size(); ++i) {
      const AggState& s = st[i];
      switch (aggs[i].kind) {
        case AggKind::kSum:
          r.push_back(s.count == 0 ? Value::Null() : Value(s.sum));
          break;
        case AggKind::kAvg:
          r.push_back(s.count == 0 ? Value::Null()
                                   : Value(s.sum / static_cast<double>(s.count)));
          break;
        case AggKind::kCount:
          r.push_back(Value(s.count));
          break;
        case AggKind::kMin:
          r.push_back(s.has ? s.min : Value::Null());
          break;
        case AggKind::kMax:
          r.push_back(s.has ? s.max : Value::Null());
          break;
        case AggKind::kCountDistinct:
          r.push_back(Value(static_cast<int64_t>(s.distinct.size())));
          break;
      }
    }
    out.push_back(std::move(r));
  }
  return out;
}

Rows SortRows(Rows in, const std::vector<SortKey>& keys) {
  std::stable_sort(in.begin(), in.end(), [&](const Row& a, const Row& b) {
    for (const SortKey& k : keys) {
      int c = a[static_cast<size_t>(k.column)].Compare(
          b[static_cast<size_t>(k.column)]);
      if (c != 0) return k.ascending ? c < 0 : c > 0;
    }
    return false;
  });
  return in;
}

Rows LimitRows(Rows in, size_t n) {
  if (in.size() > n) in.resize(n);
  return in;
}

Rows DistinctRows(const Rows& in, QueryContext* ctx) {
  Rows out;
  std::unordered_map<Row, bool, RowKeyHash, RowKeyEq> seen;
  for (const Row& r : in) {
    if (ctx != nullptr && !ctx->KeepGoing()) return out;
    if (seen.emplace(r, true).second) out.push_back(r);
  }
  return out;
}

std::string FormatRows(const Rows& rows, const std::vector<std::string>& names,
                       size_t max_rows) {
  std::string s;
  if (!names.empty()) {
    for (size_t i = 0; i < names.size(); ++i) {
      if (i) s += " | ";
      s += names[i];
    }
    s += "\n";
    s.append(s.size() - 1, '-');
    s += "\n";
  }
  size_t shown = 0;
  for (const Row& r : rows) {
    if (shown++ >= max_rows) {
      s += "... (" + std::to_string(rows.size() - max_rows) + " more)\n";
      break;
    }
    for (size_t i = 0; i < r.size(); ++i) {
      if (i) s += " | ";
      s += r[i].ToString();
    }
    s += "\n";
  }
  return s;
}

}  // namespace bih
