file(REMOVE_RECURSE
  "CMakeFiles/bih_tpch.dir/dbgen.cc.o"
  "CMakeFiles/bih_tpch.dir/dbgen.cc.o.d"
  "CMakeFiles/bih_tpch.dir/schema.cc.o"
  "CMakeFiles/bih_tpch.dir/schema.cc.o.d"
  "libbih_tpch.a"
  "libbih_tpch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bih_tpch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
