// Negative-compile fixture: releasing a mutex that is not held MUST fail
// under -Werror=thread-safety (unlock is annotated RELEASE()).
#include "common/thread_annotations.h"

namespace {
bih::Mutex g_mu;
}  // namespace

int main() {
  g_mu.unlock();  // never locked: -Wthread-safety error
  return 0;
}
