#ifndef TPCBIH_COMMON_VALUE_H_
#define TPCBIH_COMMON_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "common/chrono.h"
#include "common/status.h"

namespace bih {

// Runtime value of a column cell. Integers, dates (as day numbers) and
// timestamps (as microsecond numbers) share the int64 representation; the
// schema carries the logical type. This keeps the variant small and the
// comparison/hash paths branch-light, which matters because the executor is
// row-at-a-time.
class Value {
 public:
  Value() : v_(std::monostate{}) {}
  explicit Value(int64_t i) : v_(i) {}
  explicit Value(double d) : v_(d) {}
  explicit Value(std::string s) : v_(std::move(s)) {}
  explicit Value(const char* s) : v_(std::string(s)) {}
  explicit Value(Date d) : v_(int64_t{d.days()}) {}
  explicit Value(Timestamp t) : v_(t.micros()) {}

  static Value Null() { return Value(); }

  bool is_null() const { return std::holds_alternative<std::monostate>(v_); }
  bool is_int() const { return std::holds_alternative<int64_t>(v_); }
  bool is_double() const { return std::holds_alternative<double>(v_); }
  bool is_string() const { return std::holds_alternative<std::string>(v_); }

  int64_t AsInt() const {
    BIH_CHECK(is_int());
    return std::get<int64_t>(v_);
  }
  double AsDouble() const {
    if (is_int()) return static_cast<double>(std::get<int64_t>(v_));
    BIH_CHECK(is_double());
    return std::get<double>(v_);
  }
  const std::string& AsString() const {
    BIH_CHECK(is_string());
    return std::get<std::string>(v_);
  }
  Date AsDate() const { return Date(static_cast<int32_t>(AsInt())); }
  Timestamp AsTimestamp() const { return Timestamp(AsInt()); }

  // Three-way comparison following SQL semantics for same-typed operands;
  // numeric int/double comparisons are allowed. NULL sorts first (used only
  // for ordering, not predicate logic — predicates treat NULL separately).
  int Compare(const Value& other) const;

  bool operator==(const Value& other) const { return Compare(other) == 0; }
  bool operator<(const Value& other) const { return Compare(other) < 0; }

  size_t Hash() const;

  std::string ToString() const;

 private:
  std::variant<std::monostate, int64_t, double, std::string> v_;
};

using Row = std::vector<Value>;

// Hash of a subset of row columns; used by hash join/aggregation.
size_t HashRowKey(const Row& row, const std::vector<int>& cols);

}  // namespace bih

#endif  // TPCBIH_COMMON_VALUE_H_
