#include "durability/checkpoint.h"

#include <cstdio>
#include <filesystem>
#include <vector>

#include "engine/engine.h"

namespace bih {

namespace {

// Versions per kSnapshotRows frame. Small enough that a frame stays cheap
// to CRC and decode, large enough that framing overhead is negligible.
constexpr size_t kSnapshotChunkRows = 256;

}  // namespace

std::string CheckpointInfo::ToString() const {
  return "checkpoint " + path + ": " + std::to_string(rows) + " rows of " +
         std::to_string(tables) + " tables, " + std::to_string(bytes) +
         " bytes, covers " + std::to_string(segments_covered) +
         " wal segments (" + std::to_string(segments_removed) + " removed)";
}

Status Checkpointer::Write(TemporalEngine* engine, CheckpointInfo* info) {
  *info = CheckpointInfo();
  WalWriter* wal = engine->wal();
  if (wal == nullptr) {
    return Status::InvalidArgument(
        "checkpoint requires an attached WAL (the snapshot is defined by a "
        "segment boundary)");
  }
  // 1. Rotation first: every commit the snapshot will contain is now in a
  // finished, synced segment, and everything after this point lands in the
  // tail the snapshot does not cover.
  BIH_RETURN_IF_ERROR(wal->Rotate());
  const uint64_t segments_covered = wal->segment_index() - 1;

  // Publish lazily-deferred engine state (System B's undo log) so the
  // snapshot scan below is a pure read.
  engine->PrepareForReads();

  const std::string final_path = CheckpointPath(base_);
  const std::string tmp_path = final_path + ".tmp";
  std::FILE* f = std::fopen(tmp_path.c_str(), "wb");
  if (f == nullptr) {
    return Status::IoError("cannot create checkpoint file " + tmp_path);
  }
  const std::string magic = WalFileMagic();
  if (std::fwrite(magic.data(), 1, magic.size(), f) != magic.size()) {
    std::fclose(f);
    return Status::IoError("cannot write checkpoint magic to " + tmp_path);
  }

  // Frame writer with crash-point injection. On an injected failure the
  // torn .tmp file is deliberately left behind — that is the crash state
  // recovery must shrug off (it only ever reads the published .ckpt).
  std::string payload, frame;
  auto write_frame = [&](const WalRecord& rec) -> Status {
    if (fault_ != nullptr && fault_->OnCheckpointWrite(frames_written_ + 1).fail) {
      std::fclose(f);
      return Status::IoError("injected checkpoint failure at frame " +
                             std::to_string(frames_written_ + 1) + " of " +
                             tmp_path);
    }
    EncodeWalRecord(rec, &payload);
    const uint32_t len = static_cast<uint32_t>(payload.size());
    const uint32_t crc = WalCrc32(
        reinterpret_cast<const uint8_t*>(payload.data()), payload.size());
    frame.clear();
    frame.append(reinterpret_cast<const char*>(&len), 4);
    frame.append(reinterpret_cast<const char*>(&crc), 4);
    frame.append(payload);
    if (std::fwrite(frame.data(), 1, frame.size(), f) != frame.size()) {
      std::fclose(f);
      return Status::IoError("short write on checkpoint file " + tmp_path);
    }
    ++frames_written_;
    return Status::OK();
  };

  // 2. Stream the snapshot: per table its definition, then its stored
  // versions in chunks. Scan order within a table is arbitrary; recovery
  // fidelity is defined on version sets, not physical order.
  for (const std::string& table : engine->ListTables()) {
    WalRecord def_rec;
    def_rec.kind = WalRecord::Kind::kCreateTable;
    def_rec.def = engine->GetTableDef(table);
    BIH_RETURN_IF_ERROR(write_frame(def_rec));
    ++info->tables;

    WalRecord chunk;
    chunk.kind = WalRecord::Kind::kSnapshotRows;
    chunk.table = table;
    Status chunk_status = Status::OK();
    ScanRequest req;
    req.table = table;
    req.temporal.system_time = TemporalSelector::All();
    req.temporal.app_time = TemporalSelector::All();
    ExecStats stats;
    req.stats = &stats;
    engine->Scan(req, [&](const Row& stored) {
      chunk.rows.push_back(stored);
      ++info->rows;
      if (chunk.rows.size() >= kSnapshotChunkRows) {
        chunk_status = write_frame(chunk);
        chunk.rows.clear();
      }
      return chunk_status.ok();
    });
    if (chunk_status.ok() && !chunk.rows.empty()) {
      chunk_status = write_frame(chunk);
    }
    BIH_RETURN_IF_ERROR(chunk_status);
  }

  // 3. Footer, sync, atomic publish.
  WalRecord footer;
  footer.kind = WalRecord::Kind::kCheckpointFooter;
  footer.ts = engine->Now().micros();
  footer.segments_covered = segments_covered;
  BIH_RETURN_IF_ERROR(write_frame(footer));
  info->clock_micros = footer.ts;

  if (std::fflush(f) != 0) {
    std::fclose(f);
    return Status::IoError("cannot flush checkpoint file " + tmp_path);
  }
  Status sync_st = SyncFileNow(f, tmp_path);
  if (!sync_st.ok()) {
    std::fclose(f);
    return sync_st;
  }
  const long size = std::ftell(f);
  info->bytes = size < 0 ? 0 : static_cast<uint64_t>(size);
  std::fclose(f);

  if (fault_ != nullptr && fault_->OnRename(renames_ + 1).fail) {
    // Crash before publication: the finished .tmp is never renamed, the
    // previous checkpoint (if any) stays authoritative.
    return Status::IoError("injected crash before checkpoint rename of " +
                           tmp_path);
  }
  ++renames_;
  std::error_code ec;
  std::filesystem::rename(tmp_path, final_path, ec);
  if (ec) {
    return Status::IoError("cannot publish checkpoint " + final_path + ": " +
                           ec.message());
  }
  BIH_RETURN_IF_ERROR(SyncParentDir(final_path));

  // 4. The covered segments are dead weight now; recovery starts from the
  // snapshot and replays only the tail.
  BIH_RETURN_IF_ERROR(RemoveWalSegmentsBefore(base_, segments_covered + 1,
                                              &info->segments_removed));
  info->path = final_path;
  info->segments_covered = segments_covered;
  return Status::OK();
}

}  // namespace bih
