// Fixture: must trip [lock-order] "no declared ... path". The nesting is
// consistent (no cycle) but reaches the inner mutex through a call —
// Flush holds queue_mu_ and calls Append, which takes log_mu_. The edge
// is only visible through call propagation, and nothing declares it.
class Spooler {
 public:
  void Flush() {
    MutexLock lock(queue_mu_);
    pending_ = 0;
    Append();
  }

  void Append() {
    MutexLock lock(log_mu_);
    ++appended_;
  }

 private:
  Mutex queue_mu_;
  Mutex log_mu_;
  int pending_ GUARDED_BY(queue_mu_) = 0;
  int appended_ GUARDED_BY(log_mu_) = 0;
};
