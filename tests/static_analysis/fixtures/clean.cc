// Fixture: must be clean under every rule — the negative control that keeps
// the lint from degenerating into flagging everything.
struct Status {
  bool ok() const { return true; }
};

Status DoWork();

Status Caller() {
  Status st = DoWork();
  return st;
}
