// Positive control: canonical use of every wrapper MUST compile cleanly
// under -Werror=thread-safety. If this fails, the macros themselves are
// emitting false positives and the gate would block correct code.
#include <chrono>

#include "common/thread_annotations.h"

namespace {

class Board {
 public:
  void Post(int v) {
    {
      bih::MutexLock lock(mu_);
      value_ = v;
      posted_ = true;
    }
    cv_.NotifyAll();
  }

  int WaitForPost() {
    bih::MutexLock lock(mu_);
    while (!posted_) {
      cv_.WaitFor(mu_, std::chrono::milliseconds(1));
    }
    return value_;
  }

  int ReadSnapshot() {
    bih::ReaderLock lock(rw_mu_);
    return snapshot_;
  }

  void PublishSnapshot(int v) {
    bih::WriterLock lock(rw_mu_);
    snapshot_ = v;
  }

 private:
  bih::Mutex mu_;
  bih::CondVar cv_;
  bool posted_ GUARDED_BY(mu_) = false;
  int value_ GUARDED_BY(mu_) = 0;

  bih::SharedMutex rw_mu_;
  int snapshot_ GUARDED_BY(rw_mu_) = 0;
};

}  // namespace

int main() {
  Board b;
  b.Post(7);
  b.PublishSnapshot(9);
  return b.WaitForPost() + b.ReadSnapshot();
}
