# Empty dependencies file for bih_history.
# This may be replaced when dependencies are built.
