#include "engine/system_d.h"

#include <algorithm>

namespace bih {

namespace {

Schema StoredSchema(const TableDef& def) {
  return def.schema.Extend({{"SYS_TIME_START", ColumnType::kTimestamp},
                            {"SYS_TIME_END", ColumnType::kTimestamp}});
}

}  // namespace

SystemDEngine::Table* SystemDEngine::Find(const std::string& name) {
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : &it->second;
}

const SystemDEngine::Table* SystemDEngine::Find(const std::string& name) const {
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : &it->second;
}

Status SystemDEngine::DoCreateTable(const TableDef& def) {
  if (tables_.count(def.name)) {
    return Status::AlreadyExists("table " + def.name);
  }
  tables_.emplace(def.name, Table(def, StoredSchema(def)));
  return Status::OK();
}

Status SystemDEngine::CreateIndex(const IndexSpec& spec) {
  Table* t = Find(spec.table);
  if (t == nullptr) return Status::NotFound("table " + spec.table);
  // Single partition: both partition selectors address the same table.
  t->indexes.AddIndex(
      spec, [&](const std::function<void(RowId, const Row&)>& fn) {
        t->data.Scan([&](RowId rid, const Row& row) {
          fn(rid, row);
          return true;
        });
      });
  return Status::OK();
}

Status SystemDEngine::DropIndexes(const std::string& table) {
  Table* t = Find(table);
  if (t == nullptr) return Status::NotFound("table " + table);
  t->indexes.Clear();
  return Status::OK();
}

const TableDef& SystemDEngine::GetTableDef(const std::string& table) const {
  const Table* t = Find(table);
  BIH_CHECK_MSG(t != nullptr, "no table " + table);
  return t->def;
}

Schema SystemDEngine::ScanSchema(const std::string& table) const {
  const Table* t = Find(table);
  BIH_CHECK_MSG(t != nullptr, "no table " + table);
  return t->stored_schema;
}

IndexKey SystemDEngine::KeyOf(const Table& t, const Row& row) const {
  IndexKey key;
  key.reserve(t.def.primary_key.size());
  for (int c : t.def.primary_key) key.push_back(row[static_cast<size_t>(c)]);
  return key;
}

RowId SystemDEngine::InsertVersion(Table* t, Row user_row, Timestamp ts) {
  user_row.push_back(Value(ts));
  user_row.push_back(Value(Period::kForever));
  RowId rid = t->data.Append(std::move(user_row));
  const Row& stored = t->data.Get(rid);
  t->current_by_key.Insert(KeyOf(*t, stored), rid);
  t->indexes.OnInsert(stored, rid);
  return rid;
}

void SystemDEngine::CloseVersion(Table* t, RowId rid, Timestamp ts) {
  Row* row = t->data.GetMutable(rid);
  t->current_by_key.Erase(KeyOf(*t, *row), rid);
  if ((*row)[row->size() - 2].AsInt() == ts.micros()) {
    // Same-transaction churn: the version was never visible; drop it.
    t->indexes.OnDelete(*row, rid);
    t->data.Delete(rid);
    return;
  }
  Row old_row = *row;
  (*row)[row->size() - 1] = Value(ts);
  t->indexes.OnUpdate(old_row, *row, rid);
}

Status SystemDEngine::DoInsert(const std::string& table, Row row) {
  Table* t = Find(table);
  if (t == nullptr) return Status::NotFound("table " + table);
  if (static_cast<int>(row.size()) != t->def.schema.num_columns()) {
    return Status::InvalidArgument("row arity mismatch for " + table);
  }
  InsertVersion(t, std::move(row), MutationTime());
  return Status::OK();
}

Status SystemDEngine::DoBulkLoad(const std::string& table,
                               std::vector<Row> rows) {
  Table* t = Find(table);
  if (t == nullptr) return Status::NotFound("table " + table);
  const size_t arity = static_cast<size_t>(t->stored_schema.num_columns());
  for (Row& row : rows) {
    if (row.size() != arity) {
      return Status::InvalidArgument(
          "bulk rows must carry explicit system-time columns");
    }
    RowId rid = t->data.Append(std::move(row));
    const Row& stored = t->data.Get(rid);
    if (stored[arity - 1].AsInt() == Period::kForever) {
      t->current_by_key.Insert(KeyOf(*t, stored), rid);
    }
    t->indexes.OnInsert(stored, rid);
  }
  return Status::OK();
}

Status SystemDEngine::DoUpdateCurrent(const std::string& table,
                                    const std::vector<Value>& key,
                                    const std::vector<ColumnAssignment>& set) {
  Table* t = Find(table);
  if (t == nullptr) return Status::NotFound("table " + table);
  Timestamp ts = MutationTime();
  std::vector<RowId> rids;
  t->current_by_key.Lookup(key, [&](RowId rid) {
    rids.push_back(rid);
    return true;
  });
  if (rids.empty()) return Status::NotFound("no current version of key");
  for (RowId rid : rids) {
    Row user_row(t->data.Get(rid).begin(), t->data.Get(rid).end() - 2);
    for (const ColumnAssignment& a : set) {
      user_row[static_cast<size_t>(a.column)] = a.value;
    }
    CloseVersion(t, rid, ts);
    InsertVersion(t, std::move(user_row), ts);
  }
  return Status::OK();
}

Status SystemDEngine::ApplySequenced(const std::string& table,
                                     const std::vector<Value>& key,
                                     int period_index, const Period& period,
                                     const std::vector<ColumnAssignment>& set,
                                     int mode) {
  Table* t = Find(table);
  if (t == nullptr) return Status::NotFound("table " + table);
  if (period_index < 0 ||
      period_index >= static_cast<int>(t->def.app_periods.size())) {
    return Status::InvalidArgument("no such application-time period");
  }
  const AppPeriodDef& ap =
      t->def.app_periods[static_cast<size_t>(period_index)];
  Timestamp ts = MutationTime();
  std::vector<RowId> rids;
  t->current_by_key.Lookup(key, [&](RowId rid) {
    rids.push_back(rid);
    return true;
  });
  if (rids.empty()) return Status::NotFound("no current version of key");

  std::vector<Row> versions;
  versions.reserve(rids.size());
  for (RowId rid : rids) versions.push_back(t->data.Get(rid));

  SequencedOps ops;
  switch (mode) {
    case 0:
      ops = PlanSequencedUpdate(versions, ap.begin_col, ap.end_col, period, set);
      break;
    case 1:
      ops = PlanSequencedDelete(versions, ap.begin_col, ap.end_col, period);
      break;
    default:
      ops = PlanOverwriteUpdate(versions, ap.begin_col, ap.end_col, period, set);
      break;
  }
  for (size_t vi : ops.to_close) CloseVersion(t, rids[vi], ts);
  for (Row& r : ops.to_insert) {
    Row user_row(r.begin(), r.end() - 2);
    InsertVersion(t, std::move(user_row), ts);
  }
  return Status::OK();
}

Status SystemDEngine::DoUpdateSequenced(const std::string& table,
                                      const std::vector<Value>& key,
                                      int period_index, const Period& period,
                                      const std::vector<ColumnAssignment>& set) {
  return ApplySequenced(table, key, period_index, period, set, 0);
}

Status SystemDEngine::DoUpdateOverwrite(const std::string& table,
                                      const std::vector<Value>& key,
                                      int period_index, const Period& period,
                                      const std::vector<ColumnAssignment>& set) {
  return ApplySequenced(table, key, period_index, period, set, 2);
}

Status SystemDEngine::DoDeleteCurrent(const std::string& table,
                                    const std::vector<Value>& key) {
  Table* t = Find(table);
  if (t == nullptr) return Status::NotFound("table " + table);
  Timestamp ts = MutationTime();
  std::vector<RowId> rids;
  t->current_by_key.Lookup(key, [&](RowId rid) {
    rids.push_back(rid);
    return true;
  });
  if (rids.empty()) return Status::NotFound("no current version of key");
  for (RowId rid : rids) CloseVersion(t, rid, ts);
  return Status::OK();
}

Status SystemDEngine::DoDeleteSequenced(const std::string& table,
                                      const std::vector<Value>& key,
                                      int period_index, const Period& period) {
  return ApplySequenced(table, key, period_index, period, {}, 1);
}

void SystemDEngine::Scan(const ScanRequest& req, const RowCallback& cb) {
  Table* t = Find(req.table);
  BIH_CHECK_MSG(t != nullptr, "no table " + req.table);
  ExecStats local;
  ExecStats* stats = req.stats != nullptr ? req.stats : &local;
  *stats = ExecStats{};
  const TemporalCols tc = ResolveTemporalCols(t->def, req.temporal.app_period_index);
  const int64_t now = clock_.Now().micros();
  stats->partitions_touched = 1;
  // No current/history split: any scan sees all versions.
  stats->touched_history = t->def.system_versioned;

  auto consider = [&](const Row& row) -> bool {
    if (req.ctx != nullptr && !req.ctx->KeepGoing()) return false;
    ++stats->rows_examined;
    if (!MatchesTemporal(row, req.temporal, tc, now)) return true;
    if (!MatchesConstraints(row, req)) return true;
    ++stats->rows_output;
    return cb(row);
  };

  std::string index_name;
  if (t->indexes.TryIndexAccess(req, tc, t->data.LiveCount(), &index_name,
                                [&](RowId rid) {
                                  if (!t->data.IsLive(rid)) return true;
                                  return consider(t->data.Get(rid));
                                })) {
    RecordIndexUse(stats, index_name);
  } else {
    const ParallelScanPlan plan =
        ResolveScanPlan(req.exec);
    if (plan.Engage(t->data.SlotCount())) {
      bool stopped = false;
      ParallelScanPartition(
          plan, t->data.SlotCount(), req.ctx,
          [&](uint64_t begin, uint64_t end, const std::atomic<bool>& stop,
              MorselOutput* out) {
            ScanMorsel(t->data, req, tc, now, begin, end, stop, out);
          },
          &stats->rows_examined, &stats->rows_output, &stopped, cb);
    } else {
      t->data.Scan([&](RowId, const Row& row) { return consider(row); });
    }
  }
  if (req.stats == nullptr) PublishStats(local);
}

void SystemDEngine::ScanMorsel(const RowTable& part, const ScanRequest& req,
                               const TemporalCols& tc, int64_t now,
                               uint64_t begin, uint64_t end,
                               const std::atomic<bool>& stop,
                               MorselOutput* out) const {
  for (RowId rid = begin; rid < end; ++rid) {
    if (MorselInterrupted(stop, req.ctx)) return;
    if (!part.IsLive(rid)) continue;
    ++out->rows_examined;
    const Row& row = part.Get(rid);
    if (!MatchesTemporal(row, req.temporal, tc, now)) continue;
    if (!MatchesConstraints(row, req)) continue;
    out->rows.push_back(row);
    out->examined_at.push_back(out->rows_examined);
  }
}

std::vector<std::string> SystemDEngine::ListTables() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, t] : tables_) names.push_back(name);
  std::sort(names.begin(), names.end());
  return names;
}

Status SystemDEngine::DoInstallVersion(const std::string& table,
                                       const Row& stored) {
  // The single-table layout stores scan-schema rows verbatim; installing a
  // snapshot version is exactly a one-row bulk load.
  return DoBulkLoad(table, {stored});
}

TableStats SystemDEngine::GetTableStats(const std::string& table) const {
  const Table* t = Find(table);
  BIH_CHECK_MSG(t != nullptr, "no table " + table);
  TableStats s;
  s.current_rows = t->current_by_key.size();
  s.history_rows = t->data.LiveCount() - t->current_by_key.size();
  return s;
}

}  // namespace bih
