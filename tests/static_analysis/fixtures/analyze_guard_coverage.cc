// Fixture: must trip [guard-coverage]. The class owns a mutex, so every
// mutable non-atomic field needs GUARDED_BY, atomic, const, or an explicit
// suppression — `epoch_` has none of them.
class Registry {
 public:
  void Bump() {
    MutexLock lock(mu_);
    ++count_;
  }

 private:
  Mutex mu_;
  int count_ GUARDED_BY(mu_) = 0;
  long epoch_ = 0;
};
