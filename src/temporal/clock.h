#ifndef TPCBIH_TEMPORAL_CLOCK_H_
#define TPCBIH_TEMPORAL_CLOCK_H_

#include <atomic>
#include <cstdint>

#include "common/chrono.h"

namespace bih {

// Monotonic commit clock issuing system-time timestamps. Real systems stamp
// versions with the wall-clock commit time; the benchmark needs the clock to
// be deterministic and strictly increasing per transaction, so we advance a
// logical microsecond counter anchored at a fixed epoch instead of reading
// the host clock.
//
// The counter is atomic because concurrent snapshot readers (src/server/)
// call Now() while a writer ticks the clock; relaxed ordering suffices
// since readers synchronize on the session layer's watermark, not on the
// clock itself.
class CommitClock {
 public:
  // The anchor is 1995-06-17, inside the TPC-H order date range, so that
  // formatted system times look plausible next to application times.
  CommitClock()
      : now_(Timestamp::FromDate(Date::FromYMD(1995, 6, 17)).micros()) {}
  explicit CommitClock(Timestamp start) : now_(start.micros()) {}

  // Timestamp for the next committing transaction; each call advances time.
  Timestamp NextCommit() {
    return Timestamp(now_.fetch_add(kTickMicros, std::memory_order_relaxed) +
                     kTickMicros);
  }

  // Current time without advancing (reads, "CURRENT" semantics).
  Timestamp Now() const {
    return Timestamp(now_.load(std::memory_order_relaxed));
  }

  // Sets the clock to `t` (WAL recovery restoring the last commit time).
  void Reset(Timestamp t) { now_.store(t.micros(), std::memory_order_relaxed); }

  static constexpr int64_t kTickMicros = 1000;  // 1ms between commits

 private:
  std::atomic<int64_t> now_;
};

}  // namespace bih

#endif  // TPCBIH_TEMPORAL_CLOCK_H_
