// TPC-BiH benchmark driver — the command-line face of the library,
// mirroring the paper's Benchmarking Service workflow: generate an
// archive, load it into an engine, run query suites, or fire ad-hoc SQL.
//
//   bih_driver generate --h 0.01 --m 0.01 --out history.bih
//   bih_driver load     --engine B --h 0.01 --m 0.01 [--batch 10] [--wal F]
//   bih_driver recover  --engine B --wal F
//   bih_driver run      --engine A --h 0.005 --m 0.005 [--suite T|K|R|B|all]
//                       [--scan-threads 8]
//   bih_driver run      --engine A --threads 8 --deadline-ms 50 [--max-inflight 4]
//   bih_driver run      --engine A --write-threads 4 --wal u.wal [--threads 8]
//   bih_driver sql      --engine C --h 0.002 --m 0.002 "SELECT ..."
//   bih_driver check    --engine A --h 0.002 --m 0.002 | check --wal F
//   bih_driver serve    --engine A --h 0.002 --m 0.002 --port 4411
//   bih_driver client   --port 4411 [--tenant acme] "SELECT ..." | --stats
#include <algorithm>
#include <cctype>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "common/thread_annotations.h"
#include "durability/checkpoint.h"
#include "engine/consistency.h"
#include "engine/recovery.h"
#include "net/client.h"
#include "net/server.h"
#include "server/session.h"
#include "sql/executor.h"
#include "tpch/schema.h"
#include "workload/context.h"
#include "workload/queries.h"
#include "workload/tpch_queries.h"

namespace bih {
namespace {

struct Args {
  std::string command;
  std::string engine = "A";
  double h = 0.002;
  double m = 0.002;
  uint64_t seed = 42;
  size_t batch = 1;
  std::string out = "history.bih";
  std::string suite = "all";
  std::string sql;
  std::string wal;       // write-ahead log path ("" = durability off)
  bool recover = false;  // load: replay --wal instead of generating
  bool checkpoint = false;  // load: write a checkpoint after loading
  bool json = false;        // recover/check: print the report as JSON
  int threads = 0;       // run: >0 switches to the concurrent session mode
  int write_threads = 0;  // run: update-stream writers (sharded keyed path)
  int64_t deadline_ms = 0;  // run: per-query deadline (0 = none)
  int max_inflight = 0;     // run: admission slots (0 = threads/2, min 1)
  int scan_threads = 0;     // intra-query scan parallelism (0 = env default)
  int port = 0;             // serve: 0 = ephemeral; client: required
  std::string host = "127.0.0.1";  // client: server address
  std::string tenant = "default";  // client: tenant for the Hello handshake
  int drain_ms = 2000;      // serve: drain deadline on SIGTERM/SIGINT
  bool stats = false;       // client: fetch the server stats JSON instead
};

// Strict numeric parsing: the whole token must convert, so trailing garbage
// ("--batch 10x", "--h 0.5abc") is an error instead of being silently cut.
bool ParseDoubleValue(const char* flag, const char* v, double* out) {
  char* end = nullptr;
  errno = 0;
  double d = std::strtod(v, &end);
  if (errno != 0 || end == v || *end != '\0') {
    std::fprintf(stderr, "malformed value for %s: '%s'\n", flag, v);
    return false;
  }
  *out = d;
  return true;
}

bool ParseUintValue(const char* flag, const char* v, uint64_t* out) {
  char* end = nullptr;
  errno = 0;
  unsigned long long u = std::strtoull(v, &end, 10);
  if (errno != 0 || end == v || *end != '\0' || v[0] == '-') {
    std::fprintf(stderr, "malformed value for %s: '%s'\n", flag, v);
    return false;
  }
  *out = u;
  return true;
}

bool ParseIntValue(const char* flag, const char* v, int64_t lo, int64_t hi,
                   int64_t* out) {
  char* end = nullptr;
  errno = 0;
  long long i = std::strtoll(v, &end, 10);
  if (errno != 0 || end == v || *end != '\0' || i < lo || i > hi) {
    std::fprintf(stderr, "malformed value for %s: '%s' (expect %lld..%lld)\n",
                 flag, v, static_cast<long long>(lo),
                 static_cast<long long>(hi));
    return false;
  }
  *out = i;
  return true;
}

bool ParseArgs(int argc, char** argv, Args* args) {
  if (argc < 2) return false;
  args->command = argv[1];
  for (int i = 2; i < argc; ++i) {
    std::string a = argv[i];
    auto next = [&](const char* what) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", what);
        return nullptr;
      }
      return argv[++i];
    };
    int64_t n = 0;
    if (a == "--engine") {
      const char* v = next("--engine");
      if (!v) return false;
      args->engine = v;
    } else if (a == "--h") {
      const char* v = next("--h");
      if (!v || !ParseDoubleValue("--h", v, &args->h)) return false;
    } else if (a == "--m") {
      const char* v = next("--m");
      if (!v || !ParseDoubleValue("--m", v, &args->m)) return false;
    } else if (a == "--seed") {
      const char* v = next("--seed");
      if (!v || !ParseUintValue("--seed", v, &args->seed)) return false;
    } else if (a == "--batch") {
      const char* v = next("--batch");
      uint64_t b = 0;
      if (!v || !ParseUintValue("--batch", v, &b)) return false;
      args->batch = static_cast<size_t>(b);
    } else if (a == "--out") {
      const char* v = next("--out");
      if (!v) return false;
      args->out = v;
    } else if (a == "--suite") {
      const char* v = next("--suite");
      if (!v) return false;
      args->suite = v;
    } else if (a == "--wal") {
      const char* v = next("--wal");
      if (!v) return false;
      args->wal = v;
    } else if (a == "--recover") {
      args->recover = true;
    } else if (a == "--checkpoint") {
      args->checkpoint = true;
    } else if (a == "--json") {
      args->json = true;
    } else if (a == "--threads") {
      const char* v = next("--threads");
      if (!v || !ParseIntValue("--threads", v, 1, 1024, &n)) return false;
      args->threads = static_cast<int>(n);
    } else if (a == "--write-threads") {
      const char* v = next("--write-threads");
      if (!v || !ParseIntValue("--write-threads", v, 1, 1024, &n)) {
        return false;
      }
      args->write_threads = static_cast<int>(n);
    } else if (a == "--deadline-ms") {
      const char* v = next("--deadline-ms");
      if (!v || !ParseIntValue("--deadline-ms", v, 0, 86400000, &n)) {
        return false;
      }
      args->deadline_ms = n;
    } else if (a == "--max-inflight") {
      const char* v = next("--max-inflight");
      if (!v || !ParseIntValue("--max-inflight", v, 1, 4096, &n)) return false;
      args->max_inflight = static_cast<int>(n);
    } else if (a == "--scan-threads") {
      const char* v = next("--scan-threads");
      if (!v || !ParseIntValue("--scan-threads", v, 1, 64, &n)) return false;
      args->scan_threads = static_cast<int>(n);
    } else if (a == "--port") {
      const char* v = next("--port");
      if (!v || !ParseIntValue("--port", v, 0, 65535, &n)) return false;
      args->port = static_cast<int>(n);
    } else if (a == "--host") {
      const char* v = next("--host");
      if (!v) return false;
      args->host = v;
    } else if (a == "--tenant") {
      const char* v = next("--tenant");
      if (!v) return false;
      args->tenant = v;
    } else if (a == "--drain-ms") {
      const char* v = next("--drain-ms");
      if (!v || !ParseIntValue("--drain-ms", v, 0, 600000, &n)) return false;
      args->drain_ms = static_cast<int>(n);
    } else if (a == "--stats") {
      args->stats = true;
    } else if ((args->command == "sql" || args->command == "client") &&
               args->sql.empty()) {
      args->sql = a;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", a.c_str());
      return false;
    }
  }
  return true;
}

int Usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  bih_driver generate --h H --m M [--seed S] [--out FILE]\n"
      "  bih_driver load     --engine A|B|C|D --h H --m M [--batch N]\n"
      "                      [--wal FILE [--checkpoint]] [--recover]\n"
      "  bih_driver recover  --engine A|B|C|D --wal FILE [--json]\n"
      "  bih_driver run      --engine A|B|C|D --h H --m M [--suite "
      "T|K|R|B|all]\n"
      "                      [--scan-threads W] [--threads N "
      "[--deadline-ms D] [--max-inflight Q]]\n"
      "                      [--write-threads U [--wal FILE]]\n"
      "  bih_driver sql      --engine A|B|C|D --h H --m M [--scan-threads W]\n"
      "                      \"SELECT ...\" | \"EXPLAIN SELECT ...\"\n"
      "  bih_driver check    --engine A|B|C|D --h H --m M [--wal FILE "
      "[--json]]\n"
      "  bih_driver serve    --engine A|B|C|D --h H --m M [--port P]\n"
      "                      [--max-inflight Q] [--scan-threads W] "
      "[--drain-ms D]\n"
      "  bih_driver client   --port P [--host H] [--tenant T]\n"
      "                      [--deadline-ms D] [--scan-threads W]\n"
      "                      \"SELECT ...\" | \"EXPLAIN SELECT ...\" | "
      "--stats\n");
  return 2;
}

// Bad invocations get a one-line pointer, not the full wall of text.
int UsageHint(const std::string& detail) {
  std::fprintf(stderr, "%s; run 'bih_driver' without arguments for usage\n",
               detail.c_str());
  return 2;
}

// Error exit: 1 for ordinary failures, 3 for kUnavailable — scripts driving
// a degraded server distinguish "retry later against a healthy server"
// from "this invocation is wrong". The retry hint, when present, is
// printed on its own line.
int FailWith(const Status& s) {
  std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
  if (s.code() == Status::Code::kUnavailable) {
    const std::string hint = s.retry_hint();
    if (!hint.empty()) std::fprintf(stderr, "retry: %s\n", hint.c_str());
    return 3;
  }
  return 1;
}

template <typename Fn>
double MeasureMs(Fn&& fn) {
  auto t0 = std::chrono::steady_clock::now();
  fn();
  auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

int Generate(const Args& args) {
  std::printf("generating TPC-H version 0 (h=%.4f)...\n", args.h);
  TpchData initial = GenerateTpch({args.h, args.seed});
  std::printf("  %zu initial rows\n", initial.TotalRows());
  GeneratorConfig gcfg;
  gcfg.m = args.m;
  gcfg.seed = args.seed + 1;
  HistoryGenerator gen(initial, gcfg);
  History history;
  double gen_ms = MeasureMs([&] { history = gen.Generate(); });
  const HistoryStats& st = gen.stats();
  std::printf("  %lld transactions / %lld operations in %.1f ms\n",
              static_cast<long long>(st.total_transactions),
              static_cast<long long>(st.total_operations), gen_ms);
  for (size_t i = 0; i < st.scenario_counts.size(); ++i) {
    std::printf("    %-26s %8lld\n", ScenarioName(static_cast<Scenario>(i)),
                static_cast<long long>(st.scenario_counts[i]));
  }
  Status s = SaveHistory(history, args.out);
  if (!s.ok()) return FailWith(s);
  std::printf("archive written to %s\n", args.out.c_str());
  return 0;
}

void PrintTableStats(TemporalEngine& engine) {
  std::printf("%-10s %12s %12s %12s\n", "table", "current", "history", "undo");
  for (const TableDef& def : BiHSchema()) {
    if (!engine.HasTable(def.name)) continue;
    TableStats ts = engine.GetTableStats(def.name);
    std::printf("%-10s %12zu %12zu %12zu\n", def.name.c_str(),
                ts.current_rows, ts.history_rows, ts.pending_undo);
  }
}

int Recover(const Args& args) {
  if (args.wal.empty()) {
    std::fprintf(stderr, "error: recover requires --wal FILE\n");
    return Usage();
  }
  std::printf("recovering System %s from %s...\n", args.engine.c_str(),
              args.wal.c_str());
  std::unique_ptr<TemporalEngine> engine;
  RecoveryReport report;
  Status st;
  double ms = MeasureMs(
      [&] { st = RecoverEngine(args.engine, args.wal, &engine, &report); });
  if (!st.ok()) return FailWith(st);
  if (args.json) {
    std::printf("%s\n", report.ToJson().c_str());
    return 0;
  }
  std::printf("%s (%.1f ms)\n\n", report.ToString().c_str(), ms);
  PrintTableStats(*engine);
  return 0;
}

int Load(const Args& args) {
  if (args.recover) return Recover(args);
  TpchData initial = GenerateTpch({args.h, args.seed});
  GeneratorConfig gcfg;
  gcfg.m = args.m;
  gcfg.seed = args.seed + 1;
  HistoryGenerator gen(initial, gcfg);
  History history = gen.Generate();
  std::printf("loading System %s (h=%.4f, m=%.4f, batch=%zu%s%s)...\n",
              args.engine.c_str(), args.h, args.m, args.batch,
              args.wal.empty() ? "" : ", wal=", args.wal.c_str());
  std::unique_ptr<TemporalEngine> engine = MakeEngine(args.engine);
  // Must outlive the engine's WAL writes; a no-op unless BIH_FAULT is set
  // (e.g. BIH_FAULT=torn:5000:7 to rehearse a crash mid-load).
  FaultInjector fault = FaultInjector::FromEnv();
  Status st;
  if (!args.wal.empty()) {
    st = engine->EnableWal(
        args.wal, fault.mode() == FaultInjector::Mode::kNone ? nullptr : &fault);
    if (!st.ok()) return FailWith(st);
    if (fault.mode() != FaultInjector::Mode::kNone) {
      std::printf("fault injection armed: %s\n", fault.ToString().c_str());
    }
  }
  double ms = MeasureMs([&] {
    st = CreateBiHTables(*engine);
    if (!st.ok()) return;
    st = LoadInitialData(*engine, initial);
    if (!st.ok()) return;
    st = ReplayHistory(*engine, history, args.batch);
    if (!st.ok()) return;
    engine->Maintain();
  });
  if (!st.ok()) return FailWith(st);
  std::printf("loaded in %.1f ms\n", ms);
  if (engine->wal() != nullptr) {
    std::printf("wal: %llu records, %llu bytes\n",
                static_cast<unsigned long long>(engine->wal()->records_written()),
                static_cast<unsigned long long>(engine->wal()->bytes_written()));
  }
  if (args.checkpoint && engine->wal() != nullptr) {
    Checkpointer cp(args.wal);
    CheckpointInfo info;
    double ckpt_ms = MeasureMs([&] { st = cp.Write(engine.get(), &info); });
    if (!st.ok()) return FailWith(st);
    std::printf("%s (%.1f ms)\n", info.ToString().c_str(), ckpt_ms);
  }
  std::printf("\n");
  PrintTableStats(*engine);
  return 0;
}

// run --threads N: drive the loaded workload through the concurrent session
// layer. Threads alternate point lookups with full-history scans on CUSTOMER
// under an optional per-query deadline; the report shows the latency
// distribution and how every query terminated (the four-outcome contract).
//
// --write-threads U adds an update stream: U writers issue UpdateCurrent on
// disjoint C_CUSTKEY stripes through the sharded keyed-write path while the
// readers (if any) run. With --wal the stream is durable and concurrent
// writers share batched group-commit fdatasyncs; the report prints the
// stream's throughput and the group stats (syncs, groups, acks, max batch).
int RunConcurrent(const Args& args) {
  WorkloadConfig cfg;
  cfg.engine_letter = args.engine;
  cfg.h = args.h;
  cfg.m = args.m;
  cfg.seed = args.seed;
  cfg.batch_size = args.batch;
  std::printf("building workload (h=%.4f, m=%.4f) on System %s...\n", args.h,
              args.m, args.engine.c_str());
  WorkloadContext ctx = BuildWorkload(cfg);
  if (!args.wal.empty()) {
    // Attached after the load so the log carries only the update stream.
    Status ws = ctx.eng().EnableWal(args.wal);
    if (!ws.ok()) return FailWith(ws);
  }
  SessionConfig scfg;
  scfg.admission.max_inflight =
      args.max_inflight > 0 ? args.max_inflight : std::max(1, args.threads / 2);
  scfg.admission.max_queued = scfg.admission.max_inflight * 2;
  scfg.scan_threads = args.scan_threads;  // 0 keeps the process default
  SessionManager server(&ctx.eng(), scfg);
  const int queries_per_thread = 200;
  const int updates_per_thread = 200;
  const auto n_cust = static_cast<int64_t>(ctx.initial.customer.size());
  std::printf(
      "concurrent run: %d threads x %d queries, %d writers x %d updates, "
      "deadline=%lldms, max-inflight=%d, scan-threads=%d, write-shards=%d\n",
      args.threads, queries_per_thread, args.write_threads,
      updates_per_thread, static_cast<long long>(args.deadline_ms),
      scfg.admission.max_inflight, server.scan_threads(),
      server.write_shards());

  // The update stream: disjoint stripes (writer u updates custkeys u+1,
  // u+1+U, ...) so writers only meet at the engine lock and the group
  // commit, never on a key.
  Mutex wmu;
  uint64_t w_ok = 0, w_err = 0;
  double write_wall_s = 0.0;
  std::vector<std::thread> writers;
  writers.reserve(args.write_threads);
  const auto wall0 = std::chrono::steady_clock::now();
  for (int u = 0; u < args.write_threads; ++u) {
    writers.emplace_back([&, u] {
      uint64_t ok = 0, err = 0;
      for (int i = 0; i < updates_per_thread; ++i) {
        const int64_t key =
            1 + (static_cast<int64_t>(u) +
                 static_cast<int64_t>(i) * args.write_threads) %
                    n_cust;
        Status st = server.UpdateCurrent(
            "CUSTOMER", {Value(key)},
            {{customer::kAcctBal, Value(1000.0 + i)}});
        if (st.ok()) {
          ++ok;
        } else {
          ++err;
        }
      }
      MutexLock lock(wmu);
      w_ok += ok;
      w_err += err;
    });
  }

  Mutex mu;
  std::vector<double> latencies_ms;
  uint64_t n_rows = 0;
  std::vector<std::thread> workers;
  workers.reserve(args.threads);
  for (int t = 0; t < args.threads; ++t) {
    workers.emplace_back([&, t] {
      std::vector<double> local_lat;
      local_lat.reserve(queries_per_thread);
      uint64_t local_rows = 0;
      uint64_t h = args.seed * 0x9e3779b97f4a7c15ULL + t + 1;
      for (int q = 0; q < queries_per_thread; ++q) {
        h = h * 6364136223846793005ULL + 1442695040888963407ULL;
        ScanRequest req;
        req.table = "CUSTOMER";
        if (q % 8 == 0) {
          // Occasional audit query: the whole bitemporal history.
          req.temporal.system_time = TemporalSelector::All();
          req.temporal.app_time = TemporalSelector::All();
        } else {
          req.equals = {{0, Value(1 + static_cast<int64_t>((h >> 16) %
                                                           n_cust))}};
        }
        QueryContext qctx =
            args.deadline_ms > 0
                ? QueryContext(QueryContext::Clock::now() +
                               std::chrono::milliseconds(args.deadline_ms))
                : QueryContext();
        std::vector<Row> rows;
        Status read_st;
        double ms =
            MeasureMs([&] { read_st = server.Read(req, &qctx, &rows); });
        local_lat.push_back(ms);
        // Non-OK reads return no rows (and are tallied per-outcome in the
        // server stats printed below); only successful reads add rows.
        if (read_st.ok()) local_rows += rows.size();
      }
      MutexLock lock(mu);
      latencies_ms.insert(latencies_ms.end(), local_lat.begin(),
                          local_lat.end());
      n_rows += local_rows;
    });
  }
  for (std::thread& w : writers) w.join();
  write_wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall0)
          .count();
  for (std::thread& w : workers) w.join();

  if (args.write_threads > 0) {
    GroupCommit::Stats gs = server.GetGroupCommitStats();
    const uint64_t wal_syncs =
        ctx.eng().wal() != nullptr ? ctx.eng().wal()->syncs() : 0;
    std::printf(
        "update stream: %llu acknowledged (%llu rejected) in %.1f ms = "
        "%.0f upd/s%s\n",
        static_cast<unsigned long long>(w_ok),
        static_cast<unsigned long long>(w_err), write_wall_s * 1e3,
        write_wall_s > 0.0 ? static_cast<double>(w_ok) / write_wall_s : 0.0,
        args.wal.empty() ? " (no wal: not durable)" : "");
    if (!args.wal.empty()) {
      std::printf(
          "group commit: %llu device syncs, %llu groups / %llu acks, "
          "max batch %llu\n",
          static_cast<unsigned long long>(wal_syncs),
          static_cast<unsigned long long>(gs.groups),
          static_cast<unsigned long long>(gs.acks),
          static_cast<unsigned long long>(gs.max_group));
    }
  }

  std::sort(latencies_ms.begin(), latencies_ms.end());
  auto pct = [&](double p) {
    if (latencies_ms.empty()) return 0.0;
    size_t i = static_cast<size_t>(p * (latencies_ms.size() - 1));
    return latencies_ms[i];
  };
  SessionManager::ServerStats stats = server.GetStats();
  std::printf("latency: p50=%.3fms p95=%.3fms p99=%.3fms max=%.3fms\n",
              pct(0.50), pct(0.95), pct(0.99),
              latencies_ms.empty() ? 0.0 : latencies_ms.back());
  std::printf(
      "outcomes: ok=%llu deadline=%llu cancelled=%llu shed=%llu "
      "(%llu rows)\n",
      static_cast<unsigned long long>(stats.reads_ok),
      static_cast<unsigned long long>(stats.reads_deadline),
      static_cast<unsigned long long>(stats.reads_cancelled),
      static_cast<unsigned long long>(stats.reads_shed),
      static_cast<unsigned long long>(n_rows));
  std::printf(
      "admission: admitted=%llu shed=%llu abandoned=%llu; watchdog "
      "kills=%llu\n",
      static_cast<unsigned long long>(stats.admission.admitted),
      static_cast<unsigned long long>(stats.admission.shed),
      static_cast<unsigned long long>(stats.admission.abandoned_queued),
      static_cast<unsigned long long>(stats.watchdog_kills));
  return 0;
}

int RunSuites(const Args& args) {
  // Intra-query parallelism for every scan the run issues; the serial suite
  // path resolves per-request thread counts from this process default.
  if (args.scan_threads > 0) SetDefaultScanThreads(args.scan_threads);
  if (args.threads > 0 || args.write_threads > 0) return RunConcurrent(args);
  WorkloadConfig cfg;
  cfg.engine_letter = args.engine;
  cfg.h = args.h;
  cfg.m = args.m;
  cfg.seed = args.seed;
  cfg.batch_size = args.batch;
  std::printf("building workload (h=%.4f, m=%.4f) on System %s...\n", args.h,
              args.m, args.engine.c_str());
  WorkloadContext ctx = BuildWorkload(cfg);
  TemporalEngine& e = ctx.eng();
  auto report = [&](const char* name, double ms) {
    std::printf("  %-34s %10.3f ms  (%llu rows examined)\n", name, ms,
                static_cast<unsigned long long>(e.last_stats().rows_examined));
  };
  bool all = args.suite == "all";
  if (all || args.suite == "T") {
    std::printf("time travel (T):\n");
    report("ALL", MeasureMs([&] { QueryAll(e); }));
    report("T1 point-point",
           MeasureMs([&] {
             T1(e, TemporalScanSpec::BothAsOf(ctx.sys_mid.micros(),
                                              ctx.app_mid));
           }));
    report("T2 point-point",
           MeasureMs([&] {
             T2(e, TemporalScanSpec::BothAsOf(ctx.sys_mid.micros(),
                                              ctx.app_mid));
           }));
    report("T6 app slice",
           MeasureMs([&] { T6AppPointSysAll(e, ctx.app_mid); }));
    report("T6 sys slice",
           MeasureMs([&] { T6SysPointAppAll(e, ctx.sys_mid); }));
    report("T7 implicit", MeasureMs([&] { T7Implicit(e); }));
    report("T7 explicit", MeasureMs([&] { T7Explicit(e); }));
  }
  if (all || args.suite == "K") {
    std::printf("pure-key / audit (K):\n");
    TemporalScanSpec full;
    full.system_time = TemporalSelector::All();
    full.app_time = TemporalSelector::All();
    report("K1 full history",
           MeasureMs([&] { K1(e, ctx.hot_custkey, full); }));
    report("K4 top-3", MeasureMs([&] { K4(e, ctx.hot_custkey, full, 3); }));
    report("K5 previous version",
           MeasureMs([&] { K5(e, ctx.hot_custkey, full); }));
    report("K6 value trace",
           MeasureMs([&] { K6(e, 9900.0, Value(), full); }));
  }
  if (all || args.suite == "R") {
    std::printf("range-timeslice (R):\n");
    report("R1 state changes", MeasureMs([&] { R1(e); }));
    report("R2 state durations", MeasureMs([&] { R2(e); }));
    report("R3 temporal agg (timeline)",
           MeasureMs([&] { R3(e, TemporalAggKind::kCount, false); }));
    report("R4 stock differences", MeasureMs([&] { R4(e, 10); }));
    report("R5 temporal join",
           MeasureMs([&] { R5(e, 5000.0, 100000.0); }));
    report("R7 price raises", MeasureMs([&] { R7(e, 7.5); }));
  }
  if (all || args.suite == "B") {
    std::printf("bitemporal dimensions (B3):\n");
    const int64_t pk = 55 % static_cast<int64_t>(ctx.initial.part.size()) + 1;
    for (int v = 1; v <= 11; ++v) {
      std::string name = "B3." + std::to_string(v);
      report(name.c_str(), MeasureMs([&] {
               B3(e, v, pk, ctx.app_mid, ctx.sys_mid);
             }));
    }
  }
  if (all || args.suite == "H") {
    std::printf("temporal TPC-H (H):\n");
    for (int q = 1; q <= 22; ++q) {
      std::string name = "Q" + std::to_string(q) + " sys-TT";
      report(name.c_str(), MeasureMs([&] {
               TpchQuery(q, e, TemporalScanSpec::SystemAsOf(
                                   ctx.sys_v0.micros()));
             }));
    }
  }
  return 0;
}

int RunSql(const Args& args) {
  if (args.sql.empty()) return Usage();
  WorkloadConfig cfg;
  cfg.engine_letter = args.engine;
  cfg.h = args.h;
  cfg.m = args.m;
  WorkloadContext ctx = BuildWorkload(cfg);
  sql::SqlResult result;
  double ms = 0;
  Status st;
  ExecOptions opts;
  opts.scan_threads = args.scan_threads;
  ms = MeasureMs(
      [&] { st = sql::ExecuteSql(ctx.eng(), args.sql, &result, nullptr, opts); });
  if (!st.ok()) return FailWith(st);
  if (result.columns.size() == 1 && result.columns[0] == "PLAN" &&
      result.rows.size() == 1) {
    // EXPLAIN: the single cell is a JSON document, not tabular data.
    std::printf("%s\n(explained in %.2f ms)\n",
                result.rows[0][0].AsString().c_str(), ms);
    return 0;
  }
  std::printf("%s(%zu rows in %.2f ms)\n",
              FormatRows(result.rows, result.columns, 50).c_str(),
              result.rows.size(), ms);
  return 0;
}

// `check` (alias `verify`): CheckBitemporalConsistency over every table —
// either on a freshly built workload or, with --wal, on a recovered engine
// (the post-crash sanity sweep).
int Check(const Args& args) {
  std::unique_ptr<TemporalEngine> recovered;
  WorkloadContext ctx;
  TemporalEngine* engine = nullptr;
  if (!args.wal.empty()) {
    RecoveryReport report;
    Status st = RecoverEngine(args.engine, args.wal, &recovered, &report);
    if (!st.ok()) return FailWith(st);
    std::printf("%s\n",
                args.json ? report.ToJson().c_str() : report.ToString().c_str());
    engine = recovered.get();
  } else {
    WorkloadConfig cfg;
    cfg.engine_letter = args.engine;
    cfg.h = args.h;
    cfg.m = args.m;
    cfg.seed = args.seed;
    std::printf("building workload (h=%.4f, m=%.4f) on System %s...\n", args.h,
                args.m, args.engine.c_str());
    ctx = BuildWorkload(cfg);
    engine = &ctx.eng();
  }
  int bad = 0;
  for (const TableDef& def : BiHSchema()) {
    if (!engine->HasTable(def.name)) continue;
    ConsistencyReport r = CheckBitemporalConsistency(*engine, def.name);
    std::printf("%-10s keys=%7zu versions=%8zu %s\n", def.name.c_str(),
                r.keys_checked, r.versions_checked,
                r.ok() ? "OK" : "VIOLATIONS");
    for (const ConsistencyViolation& v : r.violations) {
      std::printf("  key=%s: %s\n", v.key[0].ToString().c_str(),
                  v.message.c_str());
      ++bad;
    }
  }
  return bad == 0 ? 0 : 1;
}

// `serve`: build the workload, put a SessionManager in front of it and
// expose it on the wire. SIGTERM/SIGINT trigger a graceful drain: stop
// accepting, let in-flight requests finish within --drain-ms, cancel the
// rest, flush, exit 0. BIH_FAULT=net:... arms connection-level chaos.
volatile std::sig_atomic_t g_stop = 0;
void OnStopSignal(int) { g_stop = 1; }

int Serve(const Args& args) {
  WorkloadConfig cfg;
  cfg.engine_letter = args.engine;
  cfg.h = args.h;
  cfg.m = args.m;
  cfg.seed = args.seed;
  cfg.batch_size = args.batch;
  std::printf("building workload (h=%.4f, m=%.4f) on System %s...\n", args.h,
              args.m, args.engine.c_str());
  WorkloadContext ctx = BuildWorkload(cfg);
  SessionConfig scfg;
  if (args.max_inflight > 0) {
    scfg.admission.max_inflight = args.max_inflight;
    scfg.admission.max_queued = args.max_inflight * 2;
  }
  scfg.scan_threads = args.scan_threads;
  SessionManager session(&ctx.eng(), scfg);
  FaultInjector fault = FaultInjector::FromEnv();
  net::ServerConfig ncfg;
  ncfg.port = static_cast<uint16_t>(args.port);
  ncfg.drain_deadline = std::chrono::milliseconds(args.drain_ms);
  if (fault.is_net_mode()) {
    ncfg.fault = &fault;
    std::printf("fault injection armed: %s\n", fault.ToString().c_str());
  }
  net::Server server(&session, ncfg);
  Status st = server.Start();
  if (!st.ok()) return FailWith(st);
  std::signal(SIGTERM, OnStopSignal);
  std::signal(SIGINT, OnStopSignal);
  std::printf("serving on %s:%u (drain deadline %dms); SIGTERM drains\n",
              ncfg.bind_address.c_str(), server.port(), args.drain_ms);
  std::fflush(stdout);  // bih-lint: allow(raw-io) -- port must reach a piped reader promptly
  while (g_stop == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  std::printf("draining...\n");
  server.Drain();
  std::printf("%s\n", server.StatsJson().c_str());
  return 0;
}

// `client`: one-shot wire client — run one SQL statement (or fetch the
// stats JSON with --stats) against a running `serve` instance.
int RunClient(const Args& args) {
  if (args.port == 0) return UsageHint("client requires --port");
  net::Client client;
  Status st = client.Connect(args.host, static_cast<uint16_t>(args.port),
                             args.tenant, args.scan_threads);
  if (!st.ok()) return FailWith(st);
  if (args.stats) {
    std::string json;
    st = client.GetStatsJson(&json);
    if (!st.ok()) return FailWith(st);
    std::printf("%s\n", json.c_str());
    return 0;
  }
  if (args.sql.empty()) return UsageHint("client requires a SQL statement");
  // EXPLAIN goes over the wire as its own message type; the reply is one
  // JSON document, not a rows frame.
  constexpr const char kExplainKw[] = "EXPLAIN ";
  constexpr size_t kExplainKwLen = sizeof(kExplainKw) - 1;
  if (args.sql.size() > kExplainKwLen) {
    bool is_explain = true;
    for (size_t i = 0; i < kExplainKwLen; ++i) {
      if (std::toupper(static_cast<unsigned char>(args.sql[i])) !=
          kExplainKw[i]) {
        is_explain = false;
        break;
      }
    }
    if (is_explain) {
      std::string json;
      double ms = MeasureMs([&] {
        st = client.Explain(args.sql.substr(kExplainKwLen),
                            static_cast<uint32_t>(args.deadline_ms), &json);
      });
      if (!st.ok()) return FailWith(st);
      std::printf("%s\n(explained in %.2f ms)\n", json.c_str(), ms);
      return 0;
    }
  }
  net::QueryReply reply;
  double ms = MeasureMs([&] {
    (void)client.Query(args.sql, static_cast<uint32_t>(args.deadline_ms),
                       &reply);  // outcome is in reply.status
  });
  if (!reply.status.ok()) {
    if (reply.retry_after_ms > 0) {
      std::fprintf(stderr, "retry after %ums\n", reply.retry_after_ms);
    }
    return FailWith(reply.status);
  }
  std::printf("%s(%zu rows in %.2f ms)\n",
              FormatRows(reply.rows, reply.columns, 50).c_str(),
              reply.rows.size(), ms);
  return 0;
}

}  // namespace
}  // namespace bih

int main(int argc, char** argv) {
  if (argc < 2) return bih::Usage();
  bih::Args args;
  if (!bih::ParseArgs(argc, argv, &args)) {
    return bih::UsageHint("invalid invocation");
  }
  if (args.command == "generate") return bih::Generate(args);
  if (args.command == "load") return bih::Load(args);
  if (args.command == "recover") return bih::Recover(args);
  if (args.command == "run") return bih::RunSuites(args);
  if (args.command == "sql") return bih::RunSql(args);
  if (args.command == "check" || args.command == "verify") {
    return bih::Check(args);
  }
  if (args.command == "serve") return bih::Serve(args);
  if (args.command == "client") return bih::RunClient(args);
  return bih::UsageHint("unknown subcommand '" + args.command + "'");
}
