// Table 2: average operations per table for the history generator,
// normalized to "per million scenarios" like the paper's m=1.0 column, and
// the history growth ratio (history operations per initial tuple).
#include <cstdio>

#include "bench_common.h"
#include "tpch/schema.h"

namespace bih {
namespace bench {
namespace {

void Run() {
  const double h = EnvScale("BIH_H", 0.001);
  const double m = EnvScale("BIH_M", 0.01);
  TpchData initial = GenerateTpch({h, 42});
  GeneratorConfig gcfg;
  gcfg.m = m;
  gcfg.seed = 7;
  HistoryGenerator gen(initial, gcfg);
  History history = gen.Generate();
  const HistoryStats& st = gen.stats();
  const double to_millions =
      1.0 / (static_cast<double>(st.total_transactions));

  PrintHeader("Table 2: operations per table (normalized per scenario), "
              "history growth ratio");
  std::printf("%-10s %10s %10s %10s %10s %10s %10s %12s\n", "table",
              "app_ins", "app_upd", "nt_ins", "nt_upd", "delete",
              "overwrite", "growth@m");
  for (const TableDef& def : BiHSchema()) {
    auto it = st.per_table.find(def.name);
    TableOpStats ops;
    if (it != st.per_table.end()) ops = it->second;
    size_t tuples = initial.TableRows(def.name).size();
    double growth = tuples == 0
                        ? 0.0
                        : static_cast<double>(ops.TotalOps()) /
                              static_cast<double>(tuples);
    std::printf("%-10s %10.4f %10.4f %10.4f %10.4f %10.4f %10.4f %12.3f\n",
                def.name.c_str(),
                static_cast<double>(ops.app_insert) * to_millions,
                static_cast<double>(ops.app_update) * to_millions,
                static_cast<double>(ops.nontemporal_insert) * to_millions,
                static_cast<double>(ops.nontemporal_update) * to_millions,
                static_cast<double>(ops.deletes) * to_millions,
                static_cast<double>(ops.overwrite_app) * to_millions, growth);
  }
  std::printf(
      "\nShape check (paper Table 2): NATION/REGION untouched; SUPPLIER "
      "non-temporal updates only; PART/PARTSUPP updates only with "
      "overwrites; LINEITEM insert-dominated; CUSTOMER update-dominated; "
      "CUSTOMER/SUPPLIER growth ratios exceed ORDERS/LINEITEM.\n");
}

}  // namespace
}  // namespace bench
}  // namespace bih

int main() {
  bih::bench::Run();
  return 0;
}
