#include <map>
#include <set>

#include <gtest/gtest.h>

#include "tpch/dbgen.h"
#include "tpch/schema.h"

namespace bih {
namespace {

class TpchGenTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    TpchConfig cfg;
    cfg.scale = 0.002;
    cfg.seed = 11;
    data_ = new TpchData(GenerateTpch(cfg));
  }
  static void TearDownTestSuite() {
    delete data_;
    data_ = nullptr;
  }
  static TpchData* data_;
};

TpchData* TpchGenTest::data_ = nullptr;

TEST_F(TpchGenTest, Cardinalities) {
  TpchCardinalities card = CardinalitiesFor(0.002);
  EXPECT_EQ(5u, data_->region.size());
  EXPECT_EQ(25u, data_->nation.size());
  EXPECT_EQ(static_cast<size_t>(card.suppliers), data_->supplier.size());
  EXPECT_EQ(static_cast<size_t>(card.parts), data_->part.size());
  EXPECT_EQ(static_cast<size_t>(card.partsupps), data_->partsupp.size());
  EXPECT_EQ(static_cast<size_t>(card.customers), data_->customer.size());
  EXPECT_EQ(static_cast<size_t>(card.orders), data_->orders.size());
  // 1..7 lineitems per order.
  EXPECT_GE(data_->lineitem.size(), data_->orders.size());
  EXPECT_LE(data_->lineitem.size(), data_->orders.size() * 7);
}

TEST_F(TpchGenTest, Deterministic) {
  TpchConfig cfg;
  cfg.scale = 0.002;
  cfg.seed = 11;
  TpchData again = GenerateTpch(cfg);
  ASSERT_EQ(data_->orders.size(), again.orders.size());
  for (size_t i = 0; i < data_->orders.size(); ++i) {
    for (size_t c = 0; c < data_->orders[i].size(); ++c) {
      ASSERT_EQ(0, data_->orders[i][c].Compare(again.orders[i][c]));
    }
  }
}

TEST_F(TpchGenTest, RowAritiesMatchSchema) {
  for (const TableDef& def : BiHSchema()) {
    for (const Row& row : data_->TableRows(def.name)) {
      ASSERT_EQ(static_cast<size_t>(def.schema.num_columns()), row.size())
          << def.name;
    }
  }
}

TEST_F(TpchGenTest, KeysAreDenseAndUnique) {
  std::set<int64_t> custkeys, orderkeys;
  for (const Row& r : data_->customer) {
    EXPECT_TRUE(custkeys.insert(r[customer::kCustKey].AsInt()).second);
  }
  for (const Row& r : data_->orders) {
    EXPECT_TRUE(orderkeys.insert(r[orders::kOrderKey].AsInt()).second);
  }
  EXPECT_EQ(1, *custkeys.begin());
  EXPECT_EQ(static_cast<int64_t>(custkeys.size()), *custkeys.rbegin());
}

TEST_F(TpchGenTest, OrderDatesInSpecRange) {
  for (const Row& r : data_->orders) {
    Date d = r[orders::kOrderDate].AsDate();
    EXPECT_GE(d, tpch_dates::kStart);
    EXPECT_LE(d, tpch_dates::kLastOrder);
  }
}

TEST_F(TpchGenTest, LineitemDateOrdering) {
  for (const Row& r : data_->lineitem) {
    Date ship = r[lineitem::kShipDate].AsDate();
    Date receipt = r[lineitem::kReceiptDate].AsDate();
    EXPECT_LT(ship, receipt);
    // ACTIVE_TIME derived from ship/receipt dates (Section 4.1).
    EXPECT_EQ(ship.days(), r[lineitem::kActiveBegin].AsInt());
    EXPECT_EQ(receipt.days(), r[lineitem::kActiveEnd].AsInt());
  }
}

TEST_F(TpchGenTest, LineitemStatusConsistent) {
  for (const Row& r : data_->lineitem) {
    Date ship = r[lineitem::kShipDate].AsDate();
    const std::string& status = r[lineitem::kLineStatus].AsString();
    EXPECT_EQ(ship <= tpch_dates::kCurrent ? "F" : "O", status);
  }
}

TEST_F(TpchGenTest, OrderStatusAggregatesLineStatus) {
  std::map<int64_t, std::pair<int, int>> counts;  // order -> (F, total)
  for (const Row& r : data_->lineitem) {
    auto& [f, total] = counts[r[lineitem::kOrderKey].AsInt()];
    f += r[lineitem::kLineStatus].AsString() == "F" ? 1 : 0;
    ++total;
  }
  for (const Row& r : data_->orders) {
    const auto& [f, total] = counts[r[orders::kOrderKey].AsInt()];
    const std::string& status = r[orders::kOrderStatus].AsString();
    if (f == total) {
      EXPECT_EQ("F", status);
    } else if (f == 0) {
      EXPECT_EQ("O", status);
    } else {
      EXPECT_EQ("P", status);
    }
  }
}

TEST_F(TpchGenTest, TotalPriceMatchesLineitems) {
  std::map<int64_t, double> totals;
  for (const Row& r : data_->lineitem) {
    totals[r[lineitem::kOrderKey].AsInt()] +=
        r[lineitem::kExtendedPrice].AsDouble() *
        (1.0 + r[lineitem::kTax].AsDouble()) *
        (1.0 - r[lineitem::kDiscount].AsDouble());
  }
  for (const Row& r : data_->orders) {
    EXPECT_NEAR(totals[r[orders::kOrderKey].AsInt()],
                r[orders::kTotalPrice].AsDouble(), 1e-6);
  }
}

TEST_F(TpchGenTest, ForeignKeysResolve) {
  std::set<int64_t> partkeys, suppkeys, custkeys;
  for (const Row& r : data_->part) partkeys.insert(r[part::kPartKey].AsInt());
  for (const Row& r : data_->supplier) {
    suppkeys.insert(r[supplier::kSuppKey].AsInt());
  }
  for (const Row& r : data_->customer) {
    custkeys.insert(r[customer::kCustKey].AsInt());
  }
  for (const Row& r : data_->partsupp) {
    EXPECT_TRUE(partkeys.count(r[partsupp::kPartKey].AsInt()));
    EXPECT_TRUE(suppkeys.count(r[partsupp::kSuppKey].AsInt()));
  }
  for (const Row& r : data_->orders) {
    EXPECT_TRUE(custkeys.count(r[orders::kCustKey].AsInt()));
  }
  for (const Row& r : data_->lineitem) {
    EXPECT_TRUE(partkeys.count(r[lineitem::kPartKey].AsInt()));
    EXPECT_TRUE(suppkeys.count(r[lineitem::kSuppKey].AsInt()));
  }
}

TEST_F(TpchGenTest, PartsuppHasFourSuppliersPerPart) {
  std::map<int64_t, std::set<int64_t>> supps;
  for (const Row& r : data_->partsupp) {
    supps[r[partsupp::kPartKey].AsInt()].insert(
        r[partsupp::kSuppKey].AsInt());
  }
  for (const auto& [p, s] : supps) EXPECT_EQ(4u, s.size()) << "part " << p;
}

TEST_F(TpchGenTest, AppTimeBeginsAreSkewed) {
  // The Zipf skew should concentrate PART availability begins close to the
  // current date (non-uniform application-time distribution).
  int64_t recent = 0;
  const int64_t cutoff = tpch_dates::kCurrent.AddDays(-180).days();
  for (const Row& r : data_->part) {
    if (r[part::kAvailBegin].AsInt() >= cutoff) ++recent;
  }
  // 180 days is ~14% of the range; skew should put well over half there.
  EXPECT_GT(recent, static_cast<int64_t>(data_->part.size()) / 2);
}

TEST_F(TpchGenTest, ScaleIsLinear) {
  TpchConfig small;
  small.scale = 0.001;
  TpchData half = GenerateTpch(small);
  EXPECT_NEAR(static_cast<double>(data_->orders.size()),
              2.0 * static_cast<double>(half.orders.size()),
              static_cast<double>(half.orders.size()) * 0.1);
}

TEST(TpchSchemaTest, TemporalAnnotations) {
  EXPECT_FALSE(RegionDef().system_versioned);
  EXPECT_FALSE(NationDef().system_versioned);
  EXPECT_TRUE(SupplierDef().system_versioned);
  EXPECT_TRUE(SupplierDef().app_periods.empty());  // degenerate table
  EXPECT_EQ(1, static_cast<int>(CustomerDef().app_periods.size()));
  EXPECT_EQ(2, static_cast<int>(OrdersDef().app_periods.size()));
  EXPECT_EQ(0, OrdersDef().FindAppPeriod("ACTIVE_TIME"));
  EXPECT_EQ(1, OrdersDef().FindAppPeriod("RECEIVABLE_TIME"));
  EXPECT_EQ(-1, OrdersDef().FindAppPeriod("NOPE"));
}

TEST(TpchSchemaTest, ColumnConstantsMatchSchema) {
  EXPECT_EQ(customer::kAcctBal,
            CustomerDef().schema.ColumnIndex("C_ACCTBAL"));
  EXPECT_EQ(orders::kTotalPrice,
            OrdersDef().schema.ColumnIndex("O_TOTALPRICE"));
  EXPECT_EQ(lineitem::kShipDate,
            LineitemDef().schema.ColumnIndex("L_SHIPDATE"));
  EXPECT_EQ(partsupp::kSupplyCost,
            PartSuppDef().schema.ColumnIndex("PS_SUPPLYCOST"));
}

}  // namespace
}  // namespace bih
