// Fixture: must trip [raw-io]. A direct fdatasync/fsync on the log fd is
// the group-commit bypass: it pays a private device sync outside the
// coordinator, so the commit neither joins a group nor passes the
// fault-injection sync points — crash sweeps stop covering it and the
// sync-index arithmetic the chaos plans rely on silently shifts.
#include <unistd.h>

int AcknowledgeMyself(int wal_fd) {
  if (fdatasync(wal_fd) != 0) return -1;
  return fsync(wal_fd);
}
