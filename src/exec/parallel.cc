#include "exec/parallel.h"

#include <algorithm>
#include <cstdlib>

namespace bih {

namespace {

constexpr int kMaxScanThreads = 64;

int EnvScanThreads() {
  static const int parsed = [] {
    const char* v = std::getenv("BIH_SCAN_THREADS");
    if (v == nullptr) return 1;
    const int n = std::atoi(v);
    return std::clamp(n, 1, kMaxScanThreads);
  }();
  return parsed;
}

// 0 = no override (fall back to the environment).
std::atomic<int> g_thread_override{0};

}  // namespace

int DefaultScanThreads() {
  const int o = g_thread_override.load(std::memory_order_relaxed);
  return o > 0 ? o : EnvScanThreads();
}

void SetDefaultScanThreads(int threads) {
  g_thread_override.store(threads < 1 ? 0 : std::min(threads, kMaxScanThreads),
                          std::memory_order_relaxed);
}

// The shared state of one parallel partition scan. Owned jointly (via
// shared_ptr) by the coordinator and the scheduler's job board, so a helper
// that raced with teardown still holds valid memory while it observes the
// stop flag.
struct ParallelJob {
  MorselScanFn body;
  uint64_t slot_count = 0;
  uint64_t morsel_size = 0;
  uint64_t num_morsels = 0;
  QueryContext* ctx = nullptr;  // borrowed; workers only read cancel flag

  // Work claiming: morsel m covers slots [m*morsel_size, ...). A morsel is
  // claimed by whoever fetch_adds `next` to its index first.
  std::atomic<uint64_t> next{0};

  // Raised by the coordinator on early exit and always before Retire. Also
  // the fence helpers re-check (seq_cst) before each claim so a helper that
  // wakes late never runs `body` after the coordinator moved on.
  std::atomic<bool> stop{false};

  // How many helpers may still join (threads - 1 at launch); decremented by
  // CAS when a helper signs on, so a 2-thread scan on an 8-thread pool gets
  // exactly one helper.
  std::atomic<int> helper_slots{0};

  // Helpers currently inside RunMorsels. Retire spins until it reaches
  // zero; the seq_cst increment/stop-check pair makes that spin sufficient
  // for the coordinator to reuse/destroy everything `body` captures.
  std::atomic<int> helpers_active{0};

  std::vector<MorselOutput> outputs;
  std::unique_ptr<std::atomic<bool>[]> done;  // per-morsel publication flag
};

namespace {

// Claims and runs morsels until the board is empty or the job stops.
// Shared by helpers and the coordinator.
void RunMorsels(ParallelJob* job) {
  while (!job->stop.load(std::memory_order_seq_cst)) {
    const uint64_t m = job->next.fetch_add(1, std::memory_order_relaxed);
    if (m >= job->num_morsels) return;
    const uint64_t begin = m * job->morsel_size;
    const uint64_t end = std::min(begin + job->morsel_size, job->slot_count);
    job->body(begin, end, job->stop, &job->outputs[m]);
    // Release pairs with the coordinator's acquire load: once it sees
    // done[m], the morsel's rows and counters are fully visible.
    job->done[m].store(true, std::memory_order_release);
  }
}

}  // namespace

ScanScheduler::ScanScheduler(int helpers) {
  workers_.reserve(static_cast<size_t>(std::max(helpers, 0)));
  for (int i = 0; i < helpers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ScanScheduler::~ScanScheduler() {
  {
    MutexLock lock(mu_);
    shutdown_ = true;
  }
  cv_.NotifyAll();
  for (std::thread& t : workers_) t.join();
}

ScanScheduler* ScanScheduler::Default() {
  // Leaked on purpose (see header). Sized so the 1..8-thread bench sweeps
  // and tests never starve, even if the first caller only wanted 2 threads.
  static ScanScheduler* pool =
      new ScanScheduler(std::max(DefaultScanThreads(), 8) - 1);
  return pool;
}

void ScanScheduler::Launch(const std::shared_ptr<ParallelJob>& job) {
  {
    MutexLock lock(mu_);
    board_ = job;
    ++job_seq_;
  }
  cv_.NotifyAll();
}

void ScanScheduler::Retire(const std::shared_ptr<ParallelJob>& job) {
  // The coordinator set job->stop before calling; make that unconditional.
  job->stop.store(true, std::memory_order_seq_cst);
  {
    MutexLock lock(mu_);
    if (board_ == job) board_.reset();
  }
  // Drain: a helper either (a) already incremented helpers_active — we spin
  // until its matching decrement — or (b) increments after our 0-read; by
  // the seq_cst total order that helper's subsequent stop check sees true
  // and it exits RunMorsels without running the body. Either way, once this
  // loop observes zero no helper will touch the job's body again. This is a
  // documented bare-atomic handoff, not a lock: the pairing is the seq_cst
  // increment/stop-check in WorkerLoop (regression-tested by the
  // RetireDrains* cases in tests/parallel_scan_test.cc).
  while (job->helpers_active.load(std::memory_order_seq_cst) != 0) {
    std::this_thread::yield();
  }
}

void ScanScheduler::WorkerLoop() {
  uint64_t seen_seq = 0;
  while (true) {
    std::shared_ptr<ParallelJob> job;
    {
      MutexLock lock(mu_);
      idle_.fetch_add(1, std::memory_order_acq_rel);
      // Explicit predicate loop (not a wait(lock, pred) lambda) so the
      // analysis sees the guarded reads of shutdown_/job_seq_ under mu_.
      while (!shutdown_ && job_seq_ == seen_seq) cv_.Wait(mu_);
      idle_.fetch_sub(1, std::memory_order_acq_rel);
      if (shutdown_) return;
      seen_seq = job_seq_;
      job = board_;
    }
    if (job == nullptr) continue;  // retired before we woke

    // Sign on within the job's helper quota.
    int slots = job->helper_slots.load(std::memory_order_relaxed);
    bool claimed = false;
    while (slots > 0 && !claimed) {
      claimed = job->helper_slots.compare_exchange_weak(
          slots, slots - 1, std::memory_order_acq_rel);
    }
    if (!claimed) continue;

    job->helpers_active.fetch_add(1, std::memory_order_seq_cst);
    RunMorsels(job.get());
    job->helpers_active.fetch_sub(1, std::memory_order_seq_cst);
  }
}

ParallelScanPlan ResolveScanPlan(int requested_threads,
                                 ScanScheduler* scheduler,
                                 uint64_t morsel_size) {
  ParallelScanPlan plan;
  plan.threads = requested_threads > 0
                     ? std::min(requested_threads, kMaxScanThreads)
                     : DefaultScanThreads();
  plan.morsel_size = morsel_size > 0 ? morsel_size : kDefaultMorselSize;
  if (plan.threads > 1) {
    plan.scheduler = scheduler != nullptr ? scheduler : ScanScheduler::Default();
  }
  if (plan.scheduler == nullptr) plan.threads = 1;
  return plan;
}

void ParallelScanPartition(const ParallelScanPlan& plan, uint64_t slot_count,
                           QueryContext* ctx, const MorselScanFn& body,
                           uint64_t* rows_examined, uint64_t* rows_output,
                           bool* stopped,
                           const std::function<bool(const Row&)>& emit) {
  auto job = std::make_shared<ParallelJob>();
  job->body = body;
  job->slot_count = slot_count;
  job->morsel_size = plan.morsel_size;
  job->num_morsels = (slot_count + plan.morsel_size - 1) / plan.morsel_size;
  job->ctx = ctx;
  job->helper_slots.store(plan.threads - 1, std::memory_order_relaxed);
  job->outputs.resize(job->num_morsels);
  job->done.reset(new std::atomic<bool>[job->num_morsels]);
  for (uint64_t m = 0; m < job->num_morsels; ++m) {
    job->done[m].store(false, std::memory_order_relaxed);
  }
  plan.scheduler->Launch(job);

  bool tripped = false;    // QueryContext said stop (deadline/cancel)
  bool emit_stop = false;  // the consumer said stop (Top-N)
  uint64_t cursor = 0;     // next morsel to emit, in order
  while (cursor < job->num_morsels) {
    if (!job->done[cursor].load(std::memory_order_acquire)) {
      // The in-order morsel is not ready: be useful, claim one ourselves.
      const uint64_t m = job->next.fetch_add(1, std::memory_order_relaxed);
      if (m < job->num_morsels) {
        const uint64_t begin = m * job->morsel_size;
        const uint64_t end =
            std::min(begin + job->morsel_size, job->slot_count);
        job->body(begin, end, job->stop, &job->outputs[m]);
        job->done[m].store(true, std::memory_order_release);
        // Per-morsel deadline check, the parallel analogue of the serial
        // loops' periodic clock sampling.
        if (ctx != nullptr && !ctx->CheckNow().ok()) {
          tripped = true;
          break;
        }
        continue;
      }
      // All morsels claimed; wait for the helper that owns `cursor`.
      bool wait_tripped = false;
      while (!job->done[cursor].load(std::memory_order_acquire)) {
        if (ctx != nullptr && !ctx->CheckNow().ok()) {
          wait_tripped = true;
          break;
        }
        std::this_thread::yield();
      }
      if (wait_tripped) {
        tripped = true;
        break;
      }
    }

    // Per-morsel deadline check on the emit path too: when helpers outpace
    // the coordinator the claim branch above never runs, and the per-row
    // KeepGoing alone would defer an expired deadline for a full clock
    // interval's worth of rows.
    if (ctx != nullptr && !ctx->CheckNow().ok()) {
      tripped = true;
      break;
    }

    MorselOutput& out = job->outputs[cursor];
    for (size_t j = 0; j < out.rows.size(); ++j) {
      // Same per-emitted-row discipline as the serial loops.
      if (ctx != nullptr && !ctx->KeepGoing()) {
        tripped = true;
        break;
      }
      ++*rows_output;
      if (!emit(out.rows[j])) {
        emit_stop = true;
        // The serial scan would have stopped mid-morsel: count exactly the
        // rows it would have examined up to this emission.
        *rows_examined += out.examined_at[j];
        break;
      }
    }
    if (tripped || emit_stop) break;
    *rows_examined += out.rows_examined;
    // Free emitted buffers eagerly; a wide scan should hold at most the
    // in-flight morsels, not the whole result set twice.
    std::vector<Row>().swap(out.rows);
    std::vector<uint64_t>().swap(out.examined_at);
    ++cursor;
  }

  job->stop.store(true, std::memory_order_seq_cst);
  plan.scheduler->Retire(job);
  if (tripped || emit_stop) *stopped = true;
}

bool ParallelMorselRun(const ParallelScanPlan& plan, uint64_t item_count,
                       QueryContext* ctx, const MorselRunFn& body) {
  auto job = std::make_shared<ParallelJob>();
  const uint64_t morsel = plan.morsel_size;
  job->body = [&body, morsel](uint64_t begin, uint64_t end,
                              const std::atomic<bool>& stop,
                              MorselOutput* out) {
    (void)out;  // results go to caller-owned per-morsel slots
    body(begin / morsel, begin, end, stop);
  };
  job->slot_count = item_count;
  job->morsel_size = morsel;
  job->num_morsels = PlanMorselCount(plan, item_count);
  job->ctx = ctx;
  job->helper_slots.store(plan.threads - 1, std::memory_order_relaxed);
  job->outputs.resize(job->num_morsels);
  job->done.reset(new std::atomic<bool>[job->num_morsels]);
  for (uint64_t m = 0; m < job->num_morsels; ++m) {
    job->done[m].store(false, std::memory_order_relaxed);
  }
  plan.scheduler->Launch(job);

  bool tripped = false;
  // Coordinator participates: claim and run morsels like a helper, with the
  // per-morsel deadline check the serial loops express as clock sampling.
  while (!tripped) {
    const uint64_t m = job->next.fetch_add(1, std::memory_order_relaxed);
    if (m >= job->num_morsels) break;
    const uint64_t begin = m * morsel;
    const uint64_t end = std::min(begin + morsel, item_count);
    body(m, begin, end, job->stop);
    job->done[m].store(true, std::memory_order_release);
    if (ctx != nullptr && !ctx->CheckNow().ok()) tripped = true;
  }
  // Wait for helpers to finish the morsels they claimed.
  for (uint64_t m = 0; m < job->num_morsels && !tripped; ++m) {
    while (!job->done[m].load(std::memory_order_acquire)) {
      if (ctx != nullptr && !ctx->CheckNow().ok()) {
        tripped = true;
        break;
      }
      std::this_thread::yield();
    }
  }

  job->stop.store(true, std::memory_order_seq_cst);
  plan.scheduler->Retire(job);
  return !tripped;
}

}  // namespace bih
