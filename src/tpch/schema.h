#ifndef TPCBIH_TPCH_SCHEMA_H_
#define TPCBIH_TPCH_SCHEMA_H_

#include <vector>

#include "catalog/schema.h"

namespace bih {

// The TPC-BiH schema (paper Figure 1): the TPC-H tables extended with
// application-time periods and system versioning.
//  * REGION and NATION stay unversioned (they rarely change).
//  * SUPPLIER is the degenerate table: system time only.
//  * PART, PARTSUPP, CUSTOMER, LINEITEM are bitemporal with one
//    application-time period each.
//  * ORDERS carries two application times: ACTIVE_TIME and RECEIVABLE_TIME.
// Application-time periods appear as pairs of DATE columns; system time is
// engine-managed.

// Column positions, in user-schema order. Grouped per table for readability.
namespace region {
constexpr int kRegionKey = 0, kName = 1, kComment = 2;
}
namespace nation {
constexpr int kNationKey = 0, kName = 1, kRegionKey = 2, kComment = 3;
}
namespace supplier {
constexpr int kSuppKey = 0, kName = 1, kAddress = 2, kNationKey = 3,
              kPhone = 4, kAcctBal = 5;
}
namespace part {
constexpr int kPartKey = 0, kName = 1, kMfgr = 2, kBrand = 3, kType = 4,
              kSize = 5, kContainer = 6, kRetailPrice = 7, kAvailBegin = 8,
              kAvailEnd = 9;
}
namespace partsupp {
constexpr int kPartKey = 0, kSuppKey = 1, kAvailQty = 2, kSupplyCost = 3,
              kValidBegin = 4, kValidEnd = 5;
}
namespace customer {
constexpr int kCustKey = 0, kName = 1, kAddress = 2, kNationKey = 3,
              kPhone = 4, kAcctBal = 5, kMktSegment = 6, kVisibleBegin = 7,
              kVisibleEnd = 8;
}
namespace orders {
constexpr int kOrderKey = 0, kCustKey = 1, kOrderStatus = 2, kTotalPrice = 3,
              kOrderDate = 4, kOrderPriority = 5, kClerk = 6,
              kShipPriority = 7, kActiveBegin = 8, kActiveEnd = 9,
              kReceivableBegin = 10, kReceivableEnd = 11;
}
namespace lineitem {
constexpr int kOrderKey = 0, kPartKey = 1, kSuppKey = 2, kLineNumber = 3,
              kQuantity = 4, kExtendedPrice = 5, kDiscount = 6, kTax = 7,
              kReturnFlag = 8, kLineStatus = 9, kShipDate = 10,
              kCommitDate = 11, kReceiptDate = 12, kShipInstruct = 13,
              kShipMode = 14, kActiveBegin = 15, kActiveEnd = 16;
}

TableDef RegionDef();
TableDef NationDef();
TableDef SupplierDef();
TableDef PartDef();
TableDef PartSuppDef();
TableDef CustomerDef();
TableDef OrdersDef();
TableDef LineitemDef();

// All eight table definitions in load order (referenced tables first).
std::vector<TableDef> BiHSchema();

}  // namespace bih

#endif  // TPCBIH_TPCH_SCHEMA_H_
