// Connection-level chaos soak for the network service layer. Hundreds of
// client threads across several tenants hammer one server while the fault
// injector tears frames, drops responses mid-send, slow-lorises writes and
// fails accepts. The properties under test are the server's robustness
// contract, end to end:
//
//  * no request is ever silently lost — every Query() a client submits
//    lands in exactly one bucket: an OK reply, a structured server error,
//    or an observably dead connection (transport error);
//  * every OK reply is byte-identical to the payload an in-process
//    execution of the same statement encodes — the wire adds faults, never
//    data corruption;
//  * graceful drain finishes within its deadline under full load, with the
//    watchdog sweeping concurrently, and in-flight requests get their
//    replies before the connection steps aside;
//  * a dead WAL surfaces to remote writers as a structured kUnavailable
//    frame with a retry hint, and a checkpoint revives the session without
//    a restart;
//  * cancellation is out-of-band and deadlines ride the wire, so a query
//    stuck behind a long writer is released either way.
//
// Fault plans come from the same injector the durability chaos sweep uses
// (BIH_FAULT=net:... selects an extra plan; BIH_NET_SOAK_THREADS scales the
// storm; BIH_NET_STATS_OUT dumps per-plan per-tenant stats JSON for CI).
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include "durability/checkpoint.h"
#include "durability/fault.h"
#include "engine/engine.h"
#include "net/client.h"
#include "net/protocol.h"
#include "net/server.h"
#include "server/session.h"
#include "sql/executor.h"
#include "reference_model.h"

namespace bih {
namespace net {
namespace {

int SoakThreads() {
  if (const char* s = std::getenv("BIH_NET_SOAK_THREADS")) {
    const int v = std::atoi(s);
    if (v > 0 && v <= 512) return v;
  }
  return 32;
}

// One statement plus the result an in-process execution produced before the
// server existed. OK replies over the wire must encode to these exact rows.
struct QueryCase {
  std::string sql;
  std::vector<std::string> columns;
  std::vector<Row> rows;
};

struct Fixture {
  std::unique_ptr<TemporalEngine> engine;
  std::vector<QueryCase> queries;
};

// Loads the ITEM table and precomputes every soak query's expected result.
// The queries pin SYSTEM_TIME AS OF the post-load watermark, so they stay
// stable no matter what else ever touches the engine.
void BuildFixture(Fixture* fx, int64_t n_rows) {
  fx->engine = MakeEngine("A");
  ASSERT_TRUE(fx->engine->CreateTable(FuzzItemDef()).ok());
  for (int64_t i = 1; i <= n_rows; ++i) {
    ASSERT_TRUE(fx->engine
                    ->Insert("ITEM",
                             {Value(i), Value(static_cast<double>(i) * 1.25),
                              Value("note-" + std::to_string(i)),
                              Value(int64_t{0}), Value(Period::kForever)})
                    .ok());
  }
  const std::string wm = std::to_string(fx->engine->Now().micros());
  std::vector<std::string> sqls;
  for (int64_t k = 1; k <= 8; ++k) {
    sqls.push_back("SELECT ID, PRICE, NOTE FROM ITEM FOR SYSTEM_TIME AS OF " +
                   wm + " WHERE ID = " + std::to_string(k));
  }
  sqls.push_back("SELECT ID, NOTE FROM ITEM FOR SYSTEM_TIME AS OF " + wm +
                 " ORDER BY ID");
  for (const std::string& q : sqls) {
    sql::SqlResult res;
    ASSERT_TRUE(sql::ExecuteSql(*fx->engine, q, &res).ok()) << q;
    ASSERT_FALSE(res.rows.empty()) << q;
    fx->queries.push_back({q, std::move(res.columns), std::move(res.rows)});
  }
}

// The payload the server must have sent for an OK reply to `qc`: encode the
// same Message it builds (kResult + echoed request id + rows).
std::string ExpectedPayload(const QueryCase& qc, uint64_t request_id) {
  Message m;
  m.type = MsgType::kResult;
  m.request_id = request_id;
  m.columns = qc.columns;
  m.rows = qc.rows;
  std::string payload;
  EncodeMessage(m, &payload);
  return payload;
}

// One worker thread's ledger. Every submitted request increments exactly
// one outcome bucket; the aggregate identity over these is the "no request
// silently lost" assertion.
struct Tally {
  uint64_t submitted = 0;
  uint64_t ok = 0;
  uint64_t server_error = 0;
  uint64_t transport_dead = 0;
  uint64_t byte_mismatch = 0;
  uint64_t connect_failures = 0;
  std::set<Status::Code> error_codes;
};

bool ConnectWithRetry(Client* c, uint16_t port, const std::string& tenant,
                      int attempts) {
  for (int i = 0; i < attempts; ++i) {
    c->Close();
    if (c->Connect("127.0.0.1", port, tenant).ok()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return false;
}

// Issues `iters` queries, reconnecting whenever an injected fault kills the
// connection, and buckets every outcome. Honours the server's retry_after
// hint on shed replies (capped: the soak should stay a storm).
void SoakWorker(uint16_t port, std::string tenant,
                const std::vector<QueryCase>* queries, int iters,
                uint64_t seed, Tally* t) {
  Client c;
  c.set_recv_timeout_ms(10000);
  if (!ConnectWithRetry(&c, port, tenant, 50)) {
    ++t->connect_failures;
    return;
  }
  uint64_t h = seed * 0x9e3779b97f4a7c15ULL + 1;
  for (int i = 0; i < iters; ++i) {
    if (!c.connected() && !ConnectWithRetry(&c, port, tenant, 50)) {
      ++t->connect_failures;
      return;
    }
    h = h * 6364136223846793005ULL + 1442695040888963407ULL;
    const QueryCase& qc = (*queries)[(h >> 33) % queries->size()];
    QueryReply reply;
    ++t->submitted;
    const Status s = c.Query(qc.sql, 5000, &reply);
    if (s.ok()) {
      ++t->ok;
      if (reply.raw_payload != ExpectedPayload(qc, reply.request_id)) {
        ++t->byte_mismatch;
      }
    } else if (s.code() == Status::Code::kIoError) {
      ++t->transport_dead;  // observably dead connection, never silence
      c.Close();
    } else {
      ++t->server_error;
      t->error_codes.insert(s.code());
      if (reply.retry_after_ms > 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(
            std::min<uint32_t>(reply.retry_after_ms, 50)));
      }
    }
  }
}

Tally Aggregate(const std::vector<Tally>& parts) {
  Tally sum;
  for (const Tally& t : parts) {
    sum.submitted += t.submitted;
    sum.ok += t.ok;
    sum.server_error += t.server_error;
    sum.transport_dead += t.transport_dead;
    sum.byte_mismatch += t.byte_mismatch;
    sum.connect_failures += t.connect_failures;
    sum.error_codes.insert(t.error_codes.begin(), t.error_codes.end());
  }
  return sum;
}

// Under injected faults the only acceptable *structured* errors are the
// load-management verdicts; anything else (kInternal, kNotFound, a parse
// error...) means the chaos corrupted a request instead of killing it.
void ExpectOnlyLoadSheddingErrors(const Tally& sum) {
  for (Status::Code code : sum.error_codes) {
    EXPECT_TRUE(code == Status::Code::kResourceExhausted ||
                code == Status::Code::kDeadlineExceeded)
        << "unexpected structured error code "
        << static_cast<int>(code);
  }
}

enum class FaultKind { kNone, kTorn, kDrop, kSlow, kAccept, kEnv };

struct PlanSpec {
  const char* name;
  FaultKind kind;
  uint64_t n;
};

FaultInjector MakePlanFault(const PlanSpec& p) {
  switch (p.kind) {
    case FaultKind::kTorn:
      return FaultInjector::NetTornNth(p.n);
    case FaultKind::kDrop:
      return FaultInjector::NetDropNth(p.n);
    case FaultKind::kSlow:
      return FaultInjector::NetSlowNth(p.n);
    case FaultKind::kAccept:
      return FaultInjector::NetAcceptFailNth(p.n);
    case FaultKind::kEnv:
      return FaultInjector::FromEnv();
    case FaultKind::kNone:
      break;
  }
  return FaultInjector();
}

// Drain must finish within its configured deadline plus scheduling slack
// (generous: CI runs this under TSan, where everything is several times
// slower). The property is "bounded", not "fast".
constexpr double kDrainSlackMs = 8000.0;

void RunSoakPlan(const PlanSpec& plan, Fixture* fx,
                 std::string* stats_json_out) {
  SCOPED_TRACE(plan.name);
  FaultInjector fault = MakePlanFault(plan);
  SessionConfig scfg;
  SessionManager session(fx->engine.get(), scfg);
  ServerConfig cfg;
  if (fault.is_net_mode()) cfg.fault = &fault;
  Server server(&session, cfg);
  ASSERT_TRUE(server.Start().ok());

  const int threads = SoakThreads();
  const int iters = 12;
  std::vector<Tally> tallies(static_cast<size_t>(threads));
  std::vector<std::thread> workers;
  workers.reserve(static_cast<size_t>(threads));
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back(SoakWorker, server.port(),
                         "tenant-" + std::to_string(t % 4), &fx->queries,
                         iters, static_cast<uint64_t>(t + 1), &tallies[t]);
  }
  for (std::thread& w : workers) w.join();

  const auto t0 = std::chrono::steady_clock::now();
  server.Drain();
  const double drain_ms =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                t0)
          .count();
  const Tally sum = Aggregate(tallies);
  const NetServerStats st = server.GetStats();
  *stats_json_out = server.StatsJson();

  // No request silently lost: the buckets partition everything submitted.
  EXPECT_EQ(sum.submitted, sum.ok + sum.server_error + sum.transport_dead);
  EXPECT_GT(sum.ok, 0u) << "the storm never got a single reply through";
  EXPECT_EQ(0u, sum.byte_mismatch)
      << "a wire reply differed from in-process execution";
  ExpectOnlyLoadSheddingErrors(sum);
  // The server saw at least every request a client got a verdict for.
  EXPECT_GE(st.queries, sum.ok + sum.server_error);
  const double drain_bound_ms =
      static_cast<double>(cfg.drain_deadline.count()) + kDrainSlackMs;
  EXPECT_LT(drain_ms, drain_bound_ms);

  switch (plan.kind) {
    case FaultKind::kNone:
      // Without injected faults the transport must be spotless.
      EXPECT_EQ(0u, sum.transport_dead);
      EXPECT_EQ(0u, sum.connect_failures);
      EXPECT_EQ(0u, st.torn_frames + st.dropped_responses + st.slow_writes +
                        st.accept_faults);
      break;
    case FaultKind::kTorn:
      EXPECT_GT(st.torn_frames, 0u) << "plan never fired";
      EXPECT_GT(sum.transport_dead, 0u);
      break;
    case FaultKind::kDrop:
      EXPECT_GT(st.dropped_responses, 0u) << "plan never fired";
      EXPECT_GT(sum.transport_dead, 0u);
      break;
    case FaultKind::kSlow:
      // Slowed frames still arrive complete: byte-identity above is the
      // real assertion, the counter just proves the plan fired.
      EXPECT_GT(st.slow_writes, 0u) << "plan never fired";
      break;
    case FaultKind::kAccept:
      EXPECT_GT(st.accept_faults, 0u) << "plan never fired";
      break;
    case FaultKind::kEnv:
      break;  // whichever net mode the environment chose; counters vary
  }
}

TEST(NetChaosTest, SoakAcrossFaultPlans) {
  Fixture fx;
  ASSERT_NO_FATAL_FAILURE(BuildFixture(&fx, 40));
  std::vector<PlanSpec> plans = {
      {"baseline", FaultKind::kNone, 0},
      {"net-torn-5", FaultKind::kTorn, 5},
      {"net-torn-2", FaultKind::kTorn, 2},
      {"net-drop-7", FaultKind::kDrop, 7},
      {"net-drop-3", FaultKind::kDrop, 3},
      {"net-slow-4", FaultKind::kSlow, 4},
      {"net-accept-3", FaultKind::kAccept, 3},
  };
  // CI's net-soak job pins an extra plan through the same env var the
  // durability sweep uses.
  if (FaultInjector::FromEnv().is_net_mode()) {
    plans.push_back({"env", FaultKind::kEnv, 0});
  }
  std::string report = "[";
  for (size_t i = 0; i < plans.size(); ++i) {
    std::string stats_json;
    RunSoakPlan(plans[i], &fx, &stats_json);
    if (i > 0) report += ",";
    report += "{\"plan\":\"" + std::string(plans[i].name) +
              "\",\"stats\":" + stats_json + "}";
  }
  report += "]\n";
  if (const char* path = std::getenv("BIH_NET_STATS_OUT")) {
    std::FILE* f = std::fopen(path, "w");
    ASSERT_NE(nullptr, f) << "cannot write " << path;
    std::fputs(report.c_str(), f);
    std::fclose(f);
  }
}

// Workers that keep storming until told to stop: connection losses turn
// into reconnect attempts, so the drain below happens under genuinely live
// load, not against an idle server.
void DrainStormWorker(uint16_t port, std::string tenant,
                      const std::vector<QueryCase>* queries,
                      std::atomic<bool>* stop, Tally* t) {
  Client c;
  c.set_recv_timeout_ms(8000);
  size_t qi = 0;
  while (!stop->load(std::memory_order_acquire)) {
    if (!c.connected()) {
      c.Close();
      if (!c.Connect("127.0.0.1", port, tenant).ok()) {
        ++t->connect_failures;  // draining or drained: expected
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        continue;
      }
    }
    const QueryCase& qc = (*queries)[qi++ % queries->size()];
    QueryReply reply;
    ++t->submitted;
    const Status s = c.Query(qc.sql, 5000, &reply);
    if (s.ok()) {
      ++t->ok;
      if (reply.raw_payload != ExpectedPayload(qc, reply.request_id)) {
        ++t->byte_mismatch;
      }
    } else if (s.code() == Status::Code::kIoError) {
      ++t->transport_dead;
      c.Close();
    } else {
      ++t->server_error;
      t->error_codes.insert(s.code());
    }
  }
}

TEST(NetChaosTest, DrainUnderLoadNeverHangsAndLosesNothing) {
  Fixture fx;
  ASSERT_NO_FATAL_FAILURE(BuildFixture(&fx, 40));
  SessionManager session(fx.engine.get(), SessionConfig{});
  ServerConfig cfg;
  cfg.drain_deadline = std::chrono::milliseconds(1000);
  Server server(&session, cfg);
  ASSERT_TRUE(server.Start().ok());

  const int threads = SoakThreads();
  std::atomic<bool> stop{false};
  std::vector<Tally> tallies(static_cast<size_t>(threads));
  std::vector<std::thread> workers;
  workers.reserve(static_cast<size_t>(threads));
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back(DrainStormWorker, server.port(),
                         "tenant-" + std::to_string(t % 4), &fx.queries,
                         &stop, &tallies[t]);
  }
  // Let the storm actually build before pulling the plug.
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  const auto t0 = std::chrono::steady_clock::now();
  server.Drain();
  const double drain_ms =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                t0)
          .count();
  stop.store(true, std::memory_order_release);
  for (std::thread& w : workers) w.join();

  const Tally sum = Aggregate(tallies);
  EXPECT_LT(drain_ms, 1000.0 + kDrainSlackMs) << "drain hung under load";
  EXPECT_EQ(sum.submitted, sum.ok + sum.server_error + sum.transport_dead);
  EXPECT_GT(sum.ok, 0u);
  EXPECT_EQ(0u, sum.byte_mismatch);
  ExpectOnlyLoadSheddingErrors(sum);
}

TEST(NetChaosTest, DrainLetsAnInflightRequestFinishFirst) {
  Fixture fx;
  ASSERT_NO_FATAL_FAILURE(BuildFixture(&fx, 40));
  SessionManager session(fx.engine.get(), SessionConfig{});
  Server server(&session, ServerConfig{});
  ASSERT_TRUE(server.Start().ok());
  Client c;
  ASSERT_TRUE(c.Connect("127.0.0.1", server.port(), "finisher").ok());

  const QueryCase& qc = fx.queries.back();
  Status got = Status::Internal("never ran");
  QueryReply reply;
  std::thread q([&] { got = c.Query(qc.sql, 0, &reply); });
  // Phase 1 of the drain waits out in-flight work; the request sent just
  // above must be answered, not cut off.
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  server.Drain();
  q.join();
  ASSERT_TRUE(got.ok()) << got.ToString();
  EXPECT_EQ(ExpectedPayload(qc, reply.request_id), reply.raw_payload);
}

// Holds the session's writer lock until released, from a plain thread. Any
// read issued meanwhile parks in the session's polled shared-lock loop,
// which is exactly where deadlines, cancels and the watchdog must reach it.
class WriterHold {
 public:
  explicit WriterHold(SessionManager* session) {
    thread_ = std::thread([this, session] {
      status_ = session->Write([this](TemporalEngine&) {
        while (!release_.load(std::memory_order_acquire)) {
          std::this_thread::sleep_for(std::chrono::milliseconds(2));
        }
        return Status::OK();
      });
    });
    // Give the writer a moment to actually take the lock.
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  ~WriterHold() { Release(); }
  void Release() {
    release_.store(true, std::memory_order_release);
    if (thread_.joinable()) thread_.join();
    EXPECT_TRUE(status_.ok()) << status_.ToString();
  }

 private:
  std::atomic<bool> release_{false};
  Status status_ = Status::OK();
  std::thread thread_;
};

TEST(NetChaosTest, OutOfBandCancelReleasesAQueryStuckBehindAWriter) {
  Fixture fx;
  ASSERT_NO_FATAL_FAILURE(BuildFixture(&fx, 40));
  SessionManager session(fx.engine.get(), SessionConfig{});
  Server server(&session, ServerConfig{});
  ASSERT_TRUE(server.Start().ok());

  Client victim;
  ASSERT_TRUE(victim.Connect("127.0.0.1", server.port(), "victim").ok());
  const uint64_t conn_id = victim.conn_id();
  const uint64_t request_id = victim.next_request_id();

  WriterHold hold(&session);
  std::atomic<bool> done{false};
  // Postgres-style: the cancel rides a second connection. Spam it until
  // the victim's reply lands — one attempt is guaranteed to overlap the
  // registered in-flight context because the query cannot finish on its
  // own while the writer holds the lock.
  std::thread canceller([&] {
    Client killer;
    if (!killer.Connect("127.0.0.1", server.port(), "victim").ok()) return;
    while (!done.load(std::memory_order_acquire)) {
      (void)killer.CancelPeer(conn_id, request_id);
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  });
  QueryReply reply;
  const Status s = victim.Query(fx.queries[0].sql, /*deadline_ms=*/0, &reply);
  done.store(true, std::memory_order_release);
  canceller.join();
  hold.Release();
  EXPECT_EQ(Status::Code::kCancelled, s.code()) << s.ToString();
  EXPECT_GT(server.GetStats().cancels, 0u);
}

TEST(NetChaosTest, RequestDeadlineRidesTheWireIntoTheSession) {
  Fixture fx;
  ASSERT_NO_FATAL_FAILURE(BuildFixture(&fx, 40));
  SessionManager session(fx.engine.get(), SessionConfig{});
  Server server(&session, ServerConfig{});
  ASSERT_TRUE(server.Start().ok());
  Client c;
  ASSERT_TRUE(c.Connect("127.0.0.1", server.port(), "hurried").ok());

  WriterHold hold(&session);
  const auto t0 = std::chrono::steady_clock::now();
  QueryReply reply;
  const Status s = c.Query(fx.queries[0].sql, /*deadline_ms=*/100, &reply);
  const auto waited = std::chrono::steady_clock::now() - t0;
  hold.Release();
  EXPECT_EQ(Status::Code::kDeadlineExceeded, s.code()) << s.ToString();
  // The deadline released the reader long before the writer let go; the
  // bound is loose (TSan) but far below "waited for the writer".
  EXPECT_LT(waited, std::chrono::seconds(5));
}

TEST(NetChaosTest, WatchdogSweepAndDrainCancelConcurrentlyWithoutDeadlock) {
  Fixture fx;
  ASSERT_NO_FATAL_FAILURE(BuildFixture(&fx, 40));
  SessionConfig scfg;
  scfg.watchdog_period = std::chrono::milliseconds(2);  // aggressive sweeps
  SessionManager session(fx.engine.get(), scfg);
  ServerConfig cfg;
  cfg.drain_deadline = std::chrono::milliseconds(300);
  Server server(&session, cfg);
  ASSERT_TRUE(server.Start().ok());
  Client c;
  ASSERT_TRUE(c.Connect("127.0.0.1", server.port(), "doomed").ok());

  WriterHold hold(&session);
  Status got = Status::OK();
  std::thread q([&] {
    QueryReply reply;
    got = c.Query(fx.queries[0].sql, /*deadline_ms=*/80, &reply);
  });
  // Drain while the watchdog is about to kill the overdue query: the two
  // cancellation paths (watchdog sweep, drain's phase-2 sweep) must
  // compose, not deadlock. Finishing at all, under TSan, is the proof.
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  const auto t0 = std::chrono::steady_clock::now();
  server.Drain();
  const double drain_ms =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                t0)
          .count();
  q.join();
  hold.Release();
  EXPECT_LT(drain_ms, 300.0 + kDrainSlackMs);
  // The query was doomed one way or the other; what it must not be is OK
  // (the writer held the lock well past the deadline) or unaccounted.
  EXPECT_FALSE(got.ok());
}

TEST(NetChaosTest, GarbageBytesKillOnlyTheirOwnConnection) {
  Fixture fx;
  ASSERT_NO_FATAL_FAILURE(BuildFixture(&fx, 40));
  SessionManager session(fx.engine.get(), SessionConfig{});
  Server server(&session, ServerConfig{});
  ASSERT_TRUE(server.Start().ok());

  Client good;
  ASSERT_TRUE(good.Connect("127.0.0.1", server.port(), "innocent").ok());

  // A raw socket feeding the server unframed garbage (0xff length prefix =
  // oversized frame). The server must close just this connection and keep
  // serving the well-behaved one. Raw syscalls are deliberate here: the
  // whole point is a peer that is not our Client.
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);  // bih-lint: allow(raw-socket)
  ASSERT_GE(fd, 0);
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(server.port());
  ASSERT_EQ(1, ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr));
  struct timeval tv;
  tv.tv_sec = 5;
  tv.tv_usec = 0;
  (void)::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));  // bih-lint: allow(raw-socket)
  ASSERT_EQ(0, ::connect(fd, reinterpret_cast<struct sockaddr*>(&addr),  // bih-lint: allow(raw-socket)
                         sizeof(addr)));
  std::string garbage(64, '\xff');
  ASSERT_EQ(static_cast<ssize_t>(garbage.size()),
            ::send(fd, garbage.data(), garbage.size(), 0));  // bih-lint: allow(raw-socket)
  char tmp[16];
  // The server cannot resync a corrupt stream: it hangs up. EOF (0) is the
  // orderly close; a reset (-1) is acceptable too.
  EXPECT_LE(::recv(fd, tmp, sizeof(tmp), 0), 0);  // bih-lint: allow(raw-socket)
  ::close(fd);

  EXPECT_GT(server.GetStats().protocol_errors, 0u);
  // The innocent connection never noticed.
  const QueryCase& qc = fx.queries[0];
  QueryReply reply;
  ASSERT_TRUE(good.Query(qc.sql, 2000, &reply).ok());
  EXPECT_EQ(ExpectedPayload(qc, reply.request_id), reply.raw_payload);
}

TEST(NetChaosTest, DeadWalSurfacesOverTheWireAndCheckpointRevives) {
  auto engine = MakeEngine("A");
  FaultInjector fi = FaultInjector::FailSyncNth(5);
  const std::string wal_path = ::testing::TempDir() + "/net_chaos_deadwal.wal";
  std::remove(wal_path.c_str());
  ASSERT_TRUE(engine->EnableWal(wal_path, &fi).ok());
  ASSERT_TRUE(engine->CreateTable(FuzzItemDef()).ok());
  SessionManager session(engine.get(), SessionConfig{});
  Server server(&session, ServerConfig{});
  ASSERT_TRUE(server.Start().ok());
  Client c;
  ASSERT_TRUE(c.Connect("127.0.0.1", server.port(), "writer").ok());

  auto insert_sql = [](int64_t id) {
    return "INSERT INTO ITEM VALUES (" + std::to_string(id) + ", 9.5, 'wal', "
           "0, 200)";
  };
  // Write over the wire until the injected sync failure kills the WAL. The
  // failing write itself surfaces as a structured error frame, never a
  // dropped connection.
  int failed_at = -1;
  for (int i = 1; i <= 10; ++i) {
    QueryReply reply;
    const Status s = c.Query(insert_sql(i), 2000, &reply);
    if (!s.ok()) {
      // The write that hit the dying WAL reports the I/O error itself; what
      // it must never be is a dead connection — the error rode a frame.
      ASSERT_FALSE(reply.raw_payload.empty())
          << "transport died; the WAL fault must stay structured: "
          << s.ToString();
      failed_at = i;
      break;
    }
  }
  ASSERT_GT(failed_at, 0) << "the WAL fault never fired";
  ASSERT_TRUE(session.read_only());

  // Degraded: remote writes get kUnavailable with a retry hint; reads on
  // the same connection keep serving the pinned snapshot.
  QueryReply degraded;
  Status s = c.Query(insert_sql(90), 2000, &degraded);
  EXPECT_EQ(Status::Code::kUnavailable, s.code()) << s.ToString();
  EXPECT_FALSE(s.retry_hint().empty());
  QueryReply read_reply;
  ASSERT_TRUE(c.Query("SELECT ID FROM ITEM ORDER BY ID", 2000, &read_reply).ok());
  const size_t rows_while_degraded = read_reply.rows.size();
  EXPECT_GT(rows_while_degraded, 0u);

  // Revive without a restart: a checkpoint folds the state into a snapshot
  // and reopens a healthy writer; the same connection can write again.
  Checkpointer cp(wal_path);
  CheckpointInfo info;
  ASSERT_TRUE(session.RunCheckpoint(&cp, &info).ok());
  EXPECT_FALSE(session.read_only());
  QueryReply revived;
  ASSERT_TRUE(c.Query(insert_sql(91), 2000, &revived).ok());
  ASSERT_TRUE(c.Query("SELECT ID FROM ITEM ORDER BY ID", 2000, &read_reply).ok());
  EXPECT_EQ(rows_while_degraded + 1, read_reply.rows.size());
  server.Drain();
}

TEST(NetChaosTest, PerTenantStatsSeparateTheNoisyNeighbour) {
  Fixture fx;
  ASSERT_NO_FATAL_FAILURE(BuildFixture(&fx, 40));
  SessionManager session(fx.engine.get(), SessionConfig{});
  ServerConfig cfg;
  cfg.tenant_quota.max_inflight = 1;
  cfg.tenant_quota.max_queued = 0;  // fail-fast: the second query sheds
  Server server(&session, cfg);
  ASSERT_TRUE(server.Start().ok());

  // The noisy tenant wedges its single slot behind the writer lock, then a
  // second connection of the same tenant gets shed with the retry hint;
  // the quiet tenant's own quota is untouched throughout.
  Client noisy_a, noisy_b, quiet;
  ASSERT_TRUE(noisy_a.Connect("127.0.0.1", server.port(), "noisy").ok());
  ASSERT_TRUE(noisy_b.Connect("127.0.0.1", server.port(), "noisy").ok());
  ASSERT_TRUE(quiet.Connect("127.0.0.1", server.port(), "quiet").ok());

  WriterHold hold(&session);
  Status wedged = Status::OK();
  std::thread wedge([&] {
    QueryReply r;
    wedged = noisy_a.Query(fx.queries[0].sql, /*deadline_ms=*/800, &r);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  QueryReply shed;
  const Status s = noisy_b.Query(fx.queries[0].sql, 2000, &shed);
  EXPECT_EQ(Status::Code::kResourceExhausted, s.code()) << s.ToString();
  EXPECT_GT(shed.retry_after_ms, 0u)
      << "a shed reply must carry the tenant's retry hint";
  hold.Release();
  wedge.join();
  // With the writer gone the quiet tenant sails through its own quota.
  QueryReply ok_reply;
  ASSERT_TRUE(quiet.Query(fx.queries[0].sql, 2000, &ok_reply).ok());

  const TenantStats noisy = server.tenants().GetOrCreate("noisy")->GetStats();
  const TenantStats quiet_stats =
      server.tenants().GetOrCreate("quiet")->GetStats();
  EXPECT_GT(noisy.shed, 0u);
  EXPECT_EQ(0u, quiet_stats.shed);
  EXPECT_EQ(1u, quiet_stats.ok);
  // And the stats JSON names both tenants for the CI artifact.
  const std::string json = server.StatsJson();
  EXPECT_NE(std::string::npos, json.find("\"noisy\""));
  EXPECT_NE(std::string::npos, json.find("\"quiet\""));
}

}  // namespace
}  // namespace net
}  // namespace bih
