#ifndef TPCBIH_ENGINE_RECOVERY_H_
#define TPCBIH_ENGINE_RECOVERY_H_

#include <memory>
#include <string>

#include "durability/wal.h"
#include "engine/engine.h"

namespace bih {

// Outcome of rebuilding an engine from its checkpoint and write-ahead log.
struct RecoveryReport {
  // --- log replay -----------------------------------------------------
  uint64_t records_total = 0;    // valid records found in the log tail
  uint64_t records_applied = 0;  // DDL + DML records replayed
  uint64_t txns_committed = 0;   // durable points (auto-commits + batches)
  uint64_t ops_dropped = 0;      // valid records discarded: unterminated txn
  uint64_t bytes_total = 0;      // log tail bytes scanned
  uint64_t bytes_salvaged = 0;   // prefix kept after torn/corrupt-tail cut
  bool tail_dropped = false;     // the log ended in a torn/corrupt frame
  std::string tail_reason;       // why the tail was cut (empty when clean)
  int64_t last_commit_ts = 0;    // commit stamp of the last durable point
  uint64_t segments_scanned = 0;  // WAL segments replayed after the snapshot

  // --- checkpoint -------------------------------------------------------
  bool checkpoint_loaded = false;       // a complete snapshot was restored
  uint64_t checkpoint_rows = 0;         // stored versions installed from it
  uint64_t checkpoint_bytes = 0;        // checkpoint file size
  uint64_t checkpoint_segments = 0;     // WAL segments the snapshot covers
  // Why a present checkpoint file was NOT used (torn write, bad frame, …);
  // empty when none exists or it loaded cleanly. An ignored checkpoint is
  // never an error: recovery falls back to full log replay.
  std::string checkpoint_ignored_reason;

  uint64_t replay_micros = 0;  // wall time of the whole rebuild

  std::string ToString() const;
  // Single-line JSON object with every field above; the CI chaos sweep
  // uploads these as its artifact.
  std::string ToJson() const;
};

// Rebuilds an engine of architecture `letter` from the log at `wal_path`:
// first the checkpoint at Checkpointer::CheckpointPath(wal_path) if one is
// present and
// complete (its footer is the completeness marker), then the WAL segment
// chain it does not cover, in index order — so replay cost is bounded by
// log-since-checkpoint, not total history. Commit timestamps are reproduced
// exactly; time-travel queries against the recovered engine agree with the
// original. A torn or corrupt segment tail and an unterminated trailing
// transaction are cleanly dropped and accounted for in `report`; a torn
// checkpoint is ignored (the previous durable state wins). Both out-params
// are filled even on failure.
Status RecoverEngine(const std::string& letter, const std::string& wal_path,
                     std::unique_ptr<TemporalEngine>* out,
                     RecoveryReport* report);

}  // namespace bih

#endif  // TPCBIH_ENGINE_RECOVERY_H_
