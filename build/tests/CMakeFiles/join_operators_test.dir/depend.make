# Empty dependencies file for join_operators_test.
# This may be replaced when dependencies are built.
