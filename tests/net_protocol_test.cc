// Wire-protocol codec tests: every field round-trips, every truncation and
// corruption is rejected without UB, and the CRC-guarded frame detects torn
// and flipped bytes exactly like the WAL frame it mirrors.
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "net/protocol.h"

namespace bih {
namespace net {
namespace {

Message FullMessage() {
  Message m;
  m.type = MsgType::kResult;
  m.conn_id = 7;
  m.request_id = 42;
  m.deadline_ms = 250;
  m.retry_after_ms = 25;
  m.scan_threads = 8;
  m.status_code = 11;
  m.text = "two rows";
  m.retry_hint = "retry against a healthy server";
  m.columns = {"ID", "PRICE", "NOTE"};
  m.rows = {{Value(int64_t{1}), Value(2.5), Value("x")},
            {Value(), Value(int64_t{-3}), Value(std::string())}};
  return m;
}

TEST(NetProtocolTest, MessageRoundTripsEveryField) {
  const Message m = FullMessage();
  std::string payload;
  EncodeMessage(m, &payload);
  Message got;
  ASSERT_TRUE(DecodeMessage(reinterpret_cast<const uint8_t*>(payload.data()),
                            payload.size(), &got)
                  .ok());
  EXPECT_EQ(m.type, got.type);
  EXPECT_EQ(m.version, got.version);
  EXPECT_EQ(m.conn_id, got.conn_id);
  EXPECT_EQ(m.request_id, got.request_id);
  EXPECT_EQ(m.deadline_ms, got.deadline_ms);
  EXPECT_EQ(m.retry_after_ms, got.retry_after_ms);
  EXPECT_EQ(m.scan_threads, got.scan_threads);
  EXPECT_EQ(m.status_code, got.status_code);
  EXPECT_EQ(m.text, got.text);
  EXPECT_EQ(m.retry_hint, got.retry_hint);
  EXPECT_EQ(m.columns, got.columns);
  ASSERT_EQ(m.rows.size(), got.rows.size());
  for (size_t r = 0; r < m.rows.size(); ++r) {
    ASSERT_EQ(m.rows[r].size(), got.rows[r].size());
    for (size_t c = 0; c < m.rows[r].size(); ++c) {
      EXPECT_TRUE(m.rows[r][c] == got.rows[r][c]) << "row " << r << " col "
                                                  << c;
    }
  }
}

TEST(NetProtocolTest, EveryMessageTypeRoundTrips) {
  for (MsgType t : {MsgType::kHello, MsgType::kQuery, MsgType::kCancel,
                    MsgType::kStats, MsgType::kPing, MsgType::kGoodbye,
                    MsgType::kExplain, MsgType::kHelloOk, MsgType::kResult,
                    MsgType::kError, MsgType::kStatsReply, MsgType::kPong,
                    MsgType::kExplainReply}) {
    Message m;
    m.type = t;
    m.request_id = static_cast<uint64_t>(t);
    std::string payload;
    EncodeMessage(m, &payload);
    Message got;
    ASSERT_TRUE(DecodeMessage(reinterpret_cast<const uint8_t*>(payload.data()),
                              payload.size(), &got)
                    .ok());
    EXPECT_EQ(t, got.type);
    EXPECT_EQ(m.request_id, got.request_id);
  }
}

TEST(NetProtocolTest, EncodingIsDeterministic) {
  // Byte-identity of responses (the chaos soak's core assertion) relies on
  // the encoder being a pure function of the message.
  std::string a, b;
  EncodeMessage(FullMessage(), &a);
  EncodeMessage(FullMessage(), &b);
  EXPECT_EQ(a, b);
}

TEST(NetProtocolTest, EveryTruncationIsRejectedNotCrashed) {
  std::string payload;
  EncodeMessage(FullMessage(), &payload);
  for (size_t n = 0; n < payload.size(); ++n) {
    Message got;
    Status st = DecodeMessage(
        reinterpret_cast<const uint8_t*>(payload.data()), n, &got);
    EXPECT_FALSE(st.ok()) << "prefix of " << n << " bytes parsed";
  }
}

TEST(NetProtocolTest, TrailingBytesRejected) {
  std::string payload;
  EncodeMessage(FullMessage(), &payload);
  payload.push_back('\0');
  Message got;
  EXPECT_FALSE(DecodeMessage(reinterpret_cast<const uint8_t*>(payload.data()),
                             payload.size(), &got)
                   .ok());
}

TEST(NetProtocolTest, UnknownTypeRejected) {
  std::string payload;
  EncodeMessage(FullMessage(), &payload);
  payload[0] = static_cast<char>(200);
  Message got;
  EXPECT_FALSE(DecodeMessage(reinterpret_cast<const uint8_t*>(payload.data()),
                             payload.size(), &got)
                   .ok());
}

TEST(NetProtocolTest, FrameRoundTripAndConsumed) {
  std::string payload;
  EncodeMessage(FullMessage(), &payload);
  std::string frame;
  EncodeFrame(payload, &frame);
  ASSERT_EQ(payload.size() + kFrameHeaderBytes, frame.size());
  size_t consumed = 0;
  std::string out;
  ASSERT_TRUE(DecodeFrame(reinterpret_cast<const uint8_t*>(frame.data()),
                          frame.size(), &consumed, &out)
                  .ok());
  EXPECT_EQ(frame.size(), consumed);
  EXPECT_EQ(payload, out);
}

TEST(NetProtocolTest, BackToBackFramesSliceCleanly) {
  std::string p1 = "first", p2 = "second payload";
  std::string buf, f;
  EncodeFrame(p1, &f);
  buf += f;
  EncodeFrame(p2, &f);
  buf += f;
  size_t consumed = 0;
  std::string out;
  ASSERT_TRUE(DecodeFrame(reinterpret_cast<const uint8_t*>(buf.data()),
                          buf.size(), &consumed, &out)
                  .ok());
  EXPECT_EQ(p1, out);
  buf.erase(0, consumed);
  ASSERT_TRUE(DecodeFrame(reinterpret_cast<const uint8_t*>(buf.data()),
                          buf.size(), &consumed, &out)
                  .ok());
  EXPECT_EQ(p2, out);
  EXPECT_EQ(0u, buf.size() - consumed);
}

TEST(NetProtocolTest, PartialFrameAsksForMore) {
  // Every proper prefix is "need more bytes" (kOutOfRange) — the torn-frame
  // injection sends exactly such a prefix, and the receiver must wait or
  // time out, never parse garbage.
  std::string frame;
  EncodeFrame("torn frame victim", &frame);
  for (size_t n = 0; n < frame.size(); ++n) {
    size_t consumed = 0;
    std::string out;
    Status st = DecodeFrame(reinterpret_cast<const uint8_t*>(frame.data()), n,
                            &consumed, &out);
    EXPECT_EQ(Status::Code::kOutOfRange, st.code()) << "prefix " << n;
  }
}

TEST(NetProtocolTest, EveryFlippedByteIsDetected) {
  std::string frame;
  EncodeFrame("integrity matters", &frame);
  for (size_t i = 0; i < frame.size(); ++i) {
    std::string bad = frame;
    bad[i] = static_cast<char>(bad[i] ^ 0x5a);
    size_t consumed = 0;
    std::string out;
    Status st = DecodeFrame(reinterpret_cast<const uint8_t*>(bad.data()),
                            bad.size(), &consumed, &out);
    // A flip in the length field may turn into "need more" (the stream then
    // starves and times out); any flip that still yields a complete frame
    // must fail the CRC. What can never happen is a clean parse.
    EXPECT_FALSE(st.ok()) << "flipped byte " << i << " parsed";
  }
}

TEST(NetProtocolTest, OversizedLengthRejected) {
  std::string frame;
  EncodeFrame("x", &frame);
  const uint32_t huge = kMaxFrameBytes + 1;
  frame.replace(0, 4, reinterpret_cast<const char*>(&huge), 4);
  size_t consumed = 0;
  std::string out;
  Status st = DecodeFrame(reinterpret_cast<const uint8_t*>(frame.data()),
                          frame.size(), &consumed, &out);
  EXPECT_EQ(Status::Code::kIoError, st.code());
}

}  // namespace
}  // namespace net
}  // namespace bih
