#ifndef TPCBIH_EXEC_PARALLEL_H_
#define TPCBIH_EXEC_PARALLEL_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "common/query_context.h"
#include "common/thread_annotations.h"
#include "common/value.h"
#include "exec/exec_options.h"

namespace bih {

// Morsel-driven intra-query parallelism for the engines' full-partition
// scans (the access path that dominates Figs. 2-15: Section 5.2 attributes
// most cross-system gaps to how much of the version space a scan touches).
//
// Shape: a partition of N slots is cut into fixed-size row-id ranges
// ("morsels"). Workers claim morsels with one atomic fetch_add, run the
// engine's existing per-row temporal/predicate filters over their range and
// park the qualifying rows in a per-morsel buffer. The coordinating query
// thread participates too (so a scan makes progress even when every helper
// is busy elsewhere) and *emits* buffers strictly in morsel order — slot
// order inside a morsel is preserved by construction, so the merged output
// is byte-identical to the serial scan, including under Top-N early stop.
//
// Index access paths stay serial: they are already selective (Section
// 5.3.3's observation), so the scan loops are the only place the threads
// help.

// Rows per morsel when the request does not choose one. Large enough that
// the claim fetch_add and the done-flag publication are noise against the
// per-row filter work; small enough that an 8-way scan of the paper's
// ~100k-version partitions still load-balances.
inline constexpr uint64_t kDefaultMorselSize = 1024;

// Process-wide default thread count for scans that do not request one
// (ScanRequest::scan_threads == 0). Resolution order: SetDefaultScanThreads
// override if set, else the BIH_SCAN_THREADS environment variable, else 1
// (serial). Clamped to [1, 64].
int DefaultScanThreads();

// Overrides the process default; `threads` < 1 clears the override back to
// the environment. Used by the driver's --scan-threads flag and the bench
// scaling sweeps.
void SetDefaultScanThreads(int threads);

// Qualifying rows of one morsel, in slot order. `examined_at[j]` is the
// number of rows the morsel had examined when rows[j] was produced, so a
// consumer that stops at rows[j] can reconstruct the exact rows_examined
// count the serial scan would have reported at that point.
struct MorselOutput {
  std::vector<Row> rows;
  std::vector<uint64_t> examined_at;
  uint64_t rows_examined = 0;
};

// Scans slots [begin, end) of a partition, appending qualifying rows to
// `out`. Must poll `stop` (and its QueryContext, if any) between rows and
// return early when either trips; partial output of an interrupted morsel
// is discarded by the coordinator, never emitted.
using MorselScanFn = std::function<void(
    uint64_t begin, uint64_t end, const std::atomic<bool>& stop,
    MorselOutput* out)>;

// Per-row interruption poll for morsel bodies: the job's stop flag (set on
// coordinator early-exit and teardown) or an external Cancel() on the
// query's context (the watchdog path). Both are relaxed atomic loads.
inline bool MorselInterrupted(const std::atomic<bool>& stop,
                              const QueryContext* ctx) {
  return stop.load(std::memory_order_relaxed) ||
         (ctx != nullptr && ctx->cancel_requested());
}

struct ParallelJob;

// A fixed pool of helper threads that scans borrow morsels-at-a-time.
// One job is posted at a time ("job board"); helpers that find the board
// empty, or the job's helper quota already claimed, go back to sleep. The
// coordinator always participates in its own scan, so a job needs no
// helpers to finish — the pool only adds speed, never liveness.
class ScanScheduler {
 public:
  // `helpers` background threads (>= 0); a scan with T threads uses the
  // coordinator plus up to T-1 helpers.
  explicit ScanScheduler(int helpers);
  ~ScanScheduler();

  ScanScheduler(const ScanScheduler&) = delete;
  ScanScheduler& operator=(const ScanScheduler&) = delete;

  int num_workers() const { return static_cast<int>(workers_.size()); }

  // Helpers currently parked on the job board's condition variable. After a
  // scan returns, this climbs back to num_workers(); the cancellation tests
  // poll it to prove an interrupted parallel scan leaves no worker running.
  int idle_workers() const { return idle_.load(std::memory_order_acquire); }

  // Lazily-created process-wide pool, sized for 8-way scans (or wider when
  // the process default asks for more at first use). Intentionally leaked:
  // helper threads live for the process, like the engines' commit clock.
  static ScanScheduler* Default();

  // Internal job-board protocol, used by ParallelScanPartition.
  void Launch(const std::shared_ptr<ParallelJob>& job);
  void Retire(const std::shared_ptr<ParallelJob>& job);

 private:
  void WorkerLoop();

  // The job board. Everything a helper reads to find work lives under mu_;
  // the per-job stop/claim/drain handoffs are the job's own atomics (see
  // ParallelJob in parallel.cc for why each one is safe without a lock).
  Mutex mu_;
  CondVar cv_;
  std::shared_ptr<ParallelJob> board_ GUARDED_BY(mu_);  // at most one job
  uint64_t job_seq_ GUARDED_BY(mu_) = 0;  // bumped per Launch; wakes sleepers
  bool shutdown_ GUARDED_BY(mu_) = false;
  std::atomic<int> idle_{0};
  // Written by the constructor before any helper can observe it, joined by
  // the destructor after shutdown_ is set: never touched concurrently.
  std::vector<std::thread> workers_;  // bih-lint: allow(guard-coverage)
};

// A resolved decision on how one partition scan runs.
struct ParallelScanPlan {
  ScanScheduler* scheduler = nullptr;  // null => serial
  int threads = 1;
  uint64_t morsel_size = kDefaultMorselSize;

  // Parallelism must pay for its fan-out: engage only when the scan is
  // wider than one morsel (a single-morsel scan is the serial loop with
  // extra steps). threads <= 1 keeps the engines' untouched serial path.
  bool Engage(uint64_t slot_count) const {
    return threads > 1 && scheduler != nullptr && slot_count > morsel_size;
  }
};

// Resolves a ScanRequest's parallelism fields: `requested_threads` == 0
// falls back to DefaultScanThreads(), a null `scheduler` falls back to the
// process-wide pool (created on demand only if the plan is parallel), and
// `morsel_size` == 0 becomes kDefaultMorselSize.
ParallelScanPlan ResolveScanPlan(int requested_threads,
                                 ScanScheduler* scheduler,
                                 uint64_t morsel_size);

// Same resolution over the consolidated knob struct.
inline ParallelScanPlan ResolveScanPlan(const ExecOptions& opts) {
  return ResolveScanPlan(opts.scan_threads, opts.scheduler, opts.morsel_size);
}

// Runs `body` over every morsel of a `slot_count`-slot partition using the
// plan's pool, emitting qualifying rows through `emit` in exact serial
// order. Counters accumulate into *rows_examined / *rows_output with the
// same values the serial loop would produce, including when `emit` returns
// false (Top-N early stop) or `ctx` trips mid-scan; *stopped is set (never
// cleared) when the scan ended early for either reason. The coordinator
// checks `ctx` per claimed morsel and per emitted row; workers poll the
// job's stop flag and the context's cancel flag per row. On return, no
// worker is still touching this scan's state.
void ParallelScanPartition(const ParallelScanPlan& plan, uint64_t slot_count,
                           QueryContext* ctx, const MorselScanFn& body,
                           uint64_t* rows_examined, uint64_t* rows_output,
                           bool* stopped,
                           const std::function<bool(const Row&)>& emit);

// How many morsels the plan cuts an `item_count`-item range into. Callers
// of ParallelMorselRun size their per-morsel result slots with this before
// launching, so each worker writes only its own slot.
inline uint64_t PlanMorselCount(const ParallelScanPlan& plan,
                                uint64_t item_count) {
  return (item_count + plan.morsel_size - 1) / plan.morsel_size;
}

// One morsel of a generic parallel operator (join run-emission, partial
// aggregation): `m` is the morsel index, [begin, end) the item range. The
// body typically writes a caller-owned slot indexed by `m`; no two
// invocations share a morsel index. Long-running bodies should poll `stop`
// via MorselInterrupted and bail early.
using MorselRunFn = std::function<void(uint64_t m, uint64_t begin,
                                       uint64_t end,
                                       const std::atomic<bool>& stop)>;

// Generic morsel fan-out for operators above the scan: runs `body` over
// every morsel of [0, item_count) on the plan's pool, the coordinator
// participating like in ParallelScanPartition. Returns true when every
// morsel completed; false when `ctx` tripped first (per-morsel CheckNow on
// the coordinator), in which case some slots may be unwritten and the
// caller must discard the output. Either way no worker is still touching
// the caller's slots on return (the scheduler drain in Retire provides the
// happens-before edge for the coordinator's subsequent merge).
bool ParallelMorselRun(const ParallelScanPlan& plan, uint64_t item_count,
                       QueryContext* ctx, const MorselRunFn& body);

}  // namespace bih

#endif  // TPCBIH_EXEC_PARALLEL_H_
