// Figure 16 (and the Section 5.8 loading summary): per-scenario loading
// latency (median and 97th percentile) on the native temporal engines,
// the total history loading time, and System D's bulk-load alternative.
//
// Expected shape: System B shows a heavy 97th-percentile tail (the
// background undo writer); System D with manual timestamps + bulk load is
// far cheaper in total.
#include <algorithm>
#include <cstdio>

#include "bench_common.h"
#include "tpch/schema.h"

namespace bih {
namespace bench {
namespace {

double Percentile(std::vector<double> v, double p) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  size_t idx = static_cast<size_t>(p * static_cast<double>(v.size() - 1));
  return v[idx];
}

void Run() {
  const double h = EnvScale("BIH_H", 0.002);
  const double m = EnvScale("BIH_M", 0.004);
  TpchData initial = GenerateTpch({h, 42});
  GeneratorConfig gcfg;
  gcfg.m = m;
  gcfg.seed = 43;
  HistoryGenerator gen(initial, gcfg);
  History history = gen.Generate();

  PrintHeader("Figure 16: loading latency per scenario (us)");
  std::printf("%-28s", "scenario");
  for (const std::string l : {"A", "B", "C"}) {
    std::printf(" %9s %9s %9s", ("Sys" + l + "_med").c_str(),
                ("Sys" + l + "_97p").c_str(), ("Sys" + l + "_max").c_str());
  }
  std::printf("\n");

  std::map<std::string, std::map<int, std::vector<double>>> latencies;
  std::map<std::string, double> total_ms;
  for (const std::string letter : {"A", "B", "C"}) {
    std::vector<double> lat;
    std::vector<Scenario> scen;
    auto engine = MakeEngine(letter);
    Status st = CreateBiHTables(*engine);
    BIH_CHECK_MSG(st.ok(), st.ToString());
    st = LoadInitialData(*engine, initial);
    BIH_CHECK_MSG(st.ok(), st.ToString());
    auto t0 = std::chrono::steady_clock::now();
    st = ReplayHistory(*engine, history, 1, &lat, &scen);
    auto t1 = std::chrono::steady_clock::now();
    BIH_CHECK_MSG(st.ok(), st.ToString());
    total_ms[letter] =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    for (size_t i = 0; i < lat.size(); ++i) {
      latencies[letter][static_cast<int>(scen[i])].push_back(lat[i]);
    }
  }

  for (int s = 0; s < static_cast<int>(Scenario::kCount); ++s) {
    std::printf("%-28s", ScenarioName(static_cast<Scenario>(s)));
    for (const std::string letter : {"A", "B", "C"}) {
      const std::vector<double>& v = latencies[letter][s];
      std::printf(" %9.1f %9.1f %9.1f", Percentile(v, 0.5),
                  Percentile(v, 0.97), Percentile(v, 1.0));
    }
    std::printf("\n");
  }

  PrintHeader("Total history loading time");
  for (const std::string letter : {"A", "B", "C"}) {
    std::printf("System%-3s transactional replay: %10.1f ms\n", letter.c_str(),
                total_ms[letter]);
  }

  // Durability tax: the same replay with the write-ahead log attached.
  // Every auto-committed operation appends + flushes one framed record, so
  // this is the worst case for the log; the ratio should stay well under 2x.
  PrintHeader("WAL overhead on the loading path");
  for (const std::string letter : {"A", "B", "C"}) {
    const std::string wal_path =
        "/tmp/bih_fig16_" + letter + ".wal";
    auto engine = MakeEngine(letter);
    Status st = engine->EnableWal(wal_path);
    BIH_CHECK_MSG(st.ok(), st.ToString());
    st = CreateBiHTables(*engine);
    BIH_CHECK_MSG(st.ok(), st.ToString());
    st = LoadInitialData(*engine, initial);
    BIH_CHECK_MSG(st.ok(), st.ToString());
    auto t0 = std::chrono::steady_clock::now();
    st = ReplayHistory(*engine, history, 1);
    auto t1 = std::chrono::steady_clock::now();
    BIH_CHECK_MSG(st.ok(), st.ToString());
    double wal_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
    std::printf(
        "System%-3s replay with wal: %10.1f ms  (%.2fx of %.1f ms, "
        "%llu records, %.1f MB)\n",
        letter.c_str(), wal_ms, wal_ms / total_ms[letter], total_ms[letter],
        static_cast<unsigned long long>(engine->wal()->records_written()),
        static_cast<double>(engine->wal()->bytes_written()) / 1e6);
    std::remove(wal_path.c_str());
  }
  // System D: manual timestamps allow a bulk load. Materialize the full
  // version history once (via a scratch engine) and bulk-insert it.
  auto scratch = LoadEngine("D", initial, history);
  std::map<std::string, std::vector<Row>> dump;
  for (const TableDef& def : BiHSchema()) {
    ScanRequest req;
    req.table = def.name;
    req.temporal.system_time = TemporalSelector::All();
    req.temporal.app_time = TemporalSelector::All();
    scratch->Scan(req, [&](const Row& row) {
      dump[def.name].push_back(row);
      return true;
    });
  }
  auto t0 = std::chrono::steady_clock::now();
  auto bulk = MakeEngine("D");
  Status st = CreateBiHTables(*bulk);
  BIH_CHECK_MSG(st.ok(), st.ToString());
  for (auto& [table, rows] : dump) {
    st = bulk->BulkLoad(table, std::move(rows));
    BIH_CHECK_MSG(st.ok(), st.ToString());
  }
  auto t1 = std::chrono::steady_clock::now();
  std::printf("System%-3s bulk load (manual timestamps): %10.1f ms\n", "D",
              std::chrono::duration<double, std::milli>(t1 - t0).count());
  std::printf(
      "\nShape check: System B's 97th percentile spikes orders of magnitude "
      "above its median (background writer); System D's bulk load beats "
      "every transactional replay.\n");
}

}  // namespace
}  // namespace bench
}  // namespace bih

int main() {
  bih::bench::Run();
  return 0;
}
