// Figure 15: the bitemporal dimension queries B3.1-B3.11 (Table 3), without
// indexes and with the Key+Time setting.
//
// Expected shape (Section 5.7): most variants degenerate to table scans and
// unindexed joins; correlation variants (temporal joins) are the slowest
// because no engine has a temporal join operator.
#include <benchmark/benchmark.h>

#include "bench_common.h"

namespace bih {
namespace bench {
namespace {

std::vector<std::unique_ptr<TemporalEngine>>* g_engines =
    new std::vector<std::unique_ptr<TemporalEngine>>();

void RegisterFor(const std::string& label, TemporalEngine* e,
                 const WorkloadContext& ctx) {
  const int64_t partkey =
      55 % static_cast<int64_t>(ctx.initial.part.size()) + 1;
  const int64_t app_mid = ctx.app_mid;
  const Timestamp sys_mid = ctx.sys_mid;
  for (int variant = 1; variant <= 11; ++variant) {
    benchmark::RegisterBenchmark(
        ("Fig15/B3_" + std::to_string(variant) + "/" + label).c_str(),
        [e, variant, partkey, app_mid, sys_mid](benchmark::State& state) {
          for (auto _ : state) {
            benchmark::DoNotOptimize(B3(*e, variant, partkey, app_mid, sys_mid));
          }
        })
        ->Unit(benchmark::kMillisecond)
        ->Iterations(3);
  }
}

void RegisterAll() {
  SharedWorkload& w = SharedWorkload::Get();
  const WorkloadContext& ctx = w.ctx();
  for (const std::string& letter : AllEngineLetters()) {
    g_engines->push_back(w.Fresh(letter));
    RegisterFor("System" + letter + "_no_index", g_engines->back().get(), ctx);
    g_engines->push_back(w.Fresh(letter));
    Status st = ApplyIndexSetting(*g_engines->back(), IndexSetting::kKeyTime);
    BIH_CHECK_MSG(st.ok(), st.ToString());
    RegisterFor("System" + letter + "_indexed", g_engines->back().get(), ctx);
  }
}

}  // namespace
}  // namespace bench
}  // namespace bih

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  bih::bench::RegisterAll();
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
