#include "exec/rows.h"

namespace bih {

std::string FormatRows(const Rows& rows, const std::vector<std::string>& names,
                       size_t max_rows) {
  std::string s;
  if (!names.empty()) {
    for (size_t i = 0; i < names.size(); ++i) {
      if (i) s += " | ";
      s += names[i];
    }
    s += "\n";
    s.append(s.size() - 1, '-');
    s += "\n";
  }
  size_t shown = 0;
  for (const Row& r : rows) {
    if (shown++ >= max_rows) {
      s += "... (" + std::to_string(rows.size() - max_rows) + " more)\n";
      break;
    }
    for (size_t i = 0; i < r.size(); ++i) {
      if (i) s += " | ";
      s += r[i].ToString();
    }
    s += "\n";
  }
  return s;
}

}  // namespace bih
