#include "common/json.h"

#include <cstdio>

namespace bih {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char raw : s) {
    const unsigned char c = static_cast<unsigned char>(raw);
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += raw;
        }
    }
  }
  return out;
}

std::string JsonQuote(const std::string& s) {
  return "\"" + JsonEscape(s) + "\"";
}

}  // namespace bih
