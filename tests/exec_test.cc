#include <gtest/gtest.h>

#include "exec/expr.h"
#include "exec/plan.h"

namespace bih {
namespace {

Row R(std::initializer_list<Value> vals) { return Row(vals); }

// The Values-only trees below never touch the engine; one instance serves
// every test as the Execute() anchor.
Rows RunTree(PlanPtr plan) {
  static TemporalEngine* engine = MakeEngine("A").release();
  return RunPlan(*plan, *engine);
}

TEST(ExprTest, ArithmeticIntAndDouble) {
  Row row{Value(int64_t{6}), Value(7.0)};
  EXPECT_EQ(13, Add(Col(0), Col(1))->Eval(row).AsDouble());
  EXPECT_EQ(42.0, Mul(Col(0), Col(1))->Eval(row).AsDouble());
  EXPECT_EQ(12, Add(Col(0), Col(0))->Eval(row).AsInt());
  EXPECT_DOUBLE_EQ(6.0 / 7.0, Div(Col(0), Col(1))->Eval(row).AsDouble());
}

TEST(ExprTest, DivisionByZeroIsNull) {
  Row row{Value(1.0), Value(0.0)};
  EXPECT_TRUE(Div(Col(0), Col(1))->Eval(row).is_null());
}

TEST(ExprTest, Comparisons) {
  Row row{Value(int64_t{5}), Value(int64_t{7})};
  EXPECT_EQ(1, Lt(Col(0), Col(1))->Eval(row).AsInt());
  EXPECT_EQ(0, Gt(Col(0), Col(1))->Eval(row).AsInt());
  EXPECT_EQ(1, Ne(Col(0), Col(1))->Eval(row).AsInt());
  EXPECT_EQ(1, Le(Col(0), Col(0))->Eval(row).AsInt());
}

TEST(ExprTest, NullPropagationInFilters) {
  Row row{Value::Null(), Value(int64_t{1})};
  EXPECT_TRUE(Eq(Col(0), Col(1))->Eval(row).is_null());
  EXPECT_FALSE(Eq(Col(0), Col(1))->Test(row));  // NULL -> filtered out
  EXPECT_TRUE(IsNull(Col(0))->Test(row));
  EXPECT_FALSE(IsNull(Col(1))->Test(row));
}

TEST(ExprTest, BooleanShortCircuit) {
  Row row{Value(int64_t{1}), Value(int64_t{0})};
  EXPECT_EQ(1, Or(Col(0), Col(1))->Eval(row).AsInt());
  EXPECT_EQ(0, And(Col(0), Col(1))->Eval(row).AsInt());
  EXPECT_EQ(1, Not(Col(1))->Eval(row).AsInt());
}

TEST(ExprTest, StringPredicates) {
  Row row{Value("PROMO BRUSHED STEEL")};
  EXPECT_TRUE(StartsWith(Col(0), Lit("PROMO"))->Test(row));
  EXPECT_FALSE(StartsWith(Col(0), Lit("STEEL"))->Test(row));
  EXPECT_TRUE(Contains(Col(0), Lit("BRUSHED"))->Test(row));
  EXPECT_FALSE(Contains(Col(0), Lit("POLISHED"))->Test(row));
}

TEST(ExprTest, BetweenAndYear) {
  Row row{Value(Date::FromYMD(1994, 5, 3))};
  EXPECT_EQ(1994, YearOf(Col(0))->Eval(row).AsInt());
  EXPECT_TRUE(Between(Col(0), Lit(Value(Date::FromYMD(1994, 1, 1))),
                      Lit(Value(Date::FromYMD(1994, 12, 31))))
                  ->Test(row));
}

TEST(PlanTest, FilterAndProject) {
  Rows in{R({Value(int64_t{1}), Value(2.0)}), R({Value(int64_t{5}), Value(3.0)})};
  Rows f = RunTree(FilterPlan(ValuesPlan(in), Gt(Col(0), Lit(int64_t{2}))));
  ASSERT_EQ(1u, f.size());
  Rows p = RunTree(ProjectPlan(ValuesPlan(f), {Mul(Col(1), Lit(2.0))}));
  EXPECT_DOUBLE_EQ(6.0, p[0][0].AsDouble());
}

TEST(PlanTest, HashJoinInner) {
  Rows left{R({Value(int64_t{1}), Value("a")}), R({Value(int64_t{2}), Value("b")}),
            R({Value(int64_t{3}), Value("c")})};
  Rows right{R({Value(int64_t{2}), Value(20.0)}),
             R({Value(int64_t{2}), Value(21.0)}),
             R({Value(int64_t{3}), Value(30.0)})};
  Rows out = RunTree(HashJoinPlan(ValuesPlan(left), ValuesPlan(right),
                              {0}, {0}, 2));
  ASSERT_EQ(3u, out.size());
  for (const Row& r : out) {
    EXPECT_EQ(0, r[0].Compare(r[2]));
    EXPECT_EQ(4u, r.size());
  }
}

TEST(PlanTest, HashJoinLeftOuterPadsNulls) {
  Rows left{R({Value(int64_t{1})}), R({Value(int64_t{2})})};
  Rows right{R({Value(int64_t{2}), Value("x")})};
  Rows out = RunTree(HashJoinPlan(ValuesPlan(left), ValuesPlan(right), {0}, {0},
                              2, JoinType::kLeftOuter));
  ASSERT_EQ(2u, out.size());
  const Row& unmatched = out[0][0].AsInt() == 1 ? out[0] : out[1];
  EXPECT_TRUE(unmatched[1].is_null());
  EXPECT_TRUE(unmatched[2].is_null());
}

TEST(PlanTest, HashJoinResidualPredicate) {
  Rows left{R({Value(int64_t{1}), Value(int64_t{10})})};
  Rows right{R({Value(int64_t{1}), Value(int64_t{5})}),
             R({Value(int64_t{1}), Value(int64_t{20})})};
  Rows out = RunTree(HashJoinPlan(ValuesPlan(left), ValuesPlan(right), {0}, {0},
                              2, JoinType::kInner, Lt(Col(1), Col(3))));
  ASSERT_EQ(1u, out.size());
  EXPECT_EQ(20, out[0][3].AsInt());
}

TEST(PlanTest, NullKeysNeverJoin) {
  Rows left{R({Value::Null(), Value(int64_t{1})})};
  Rows right{R({Value::Null(), Value(int64_t{2})})};
  EXPECT_TRUE(RunTree(HashJoinPlan(ValuesPlan(left), ValuesPlan(right),
                               {0}, {0}, 2))
                  .empty());
}

TEST(PlanTest, AggregateKinds) {
  Rows in{R({Value("g"), Value(1.0)}), R({Value("g"), Value(3.0)}),
          R({Value("h"), Value(5.0)}), R({Value("g"), Value(3.0)})};
  Rows out = RunTree(SortPlan(
      AggregatePlan(ValuesPlan(in), {0},
                    {{AggKind::kSum, Col(1)},
                     {AggKind::kAvg, Col(1)},
                     {AggKind::kMin, Col(1)},
                     {AggKind::kMax, Col(1)},
                     {AggKind::kCount, nullptr},
                     {AggKind::kCountDistinct, Col(1)}}),
      {SortSpec{Col(0), true}}));
  ASSERT_EQ(2u, out.size());
  EXPECT_DOUBLE_EQ(7.0, out[0][1].AsDouble());
  EXPECT_DOUBLE_EQ(7.0 / 3.0, out[0][2].AsDouble());
  EXPECT_DOUBLE_EQ(1.0, out[0][3].AsDouble());
  EXPECT_DOUBLE_EQ(3.0, out[0][4].AsDouble());
  EXPECT_EQ(3, out[0][5].AsInt());
  EXPECT_EQ(2, out[0][6].AsInt());
}

TEST(PlanTest, GlobalAggregateOnEmptyInput) {
  Rows out = RunTree(AggregatePlan(ValuesPlan({}), {},
                               {{AggKind::kCount, nullptr},
                                {AggKind::kSum, Col(0)}}));
  ASSERT_EQ(1u, out.size());
  EXPECT_EQ(0, out[0][0].AsInt());
  EXPECT_TRUE(out[0][1].is_null());  // SUM over nothing is NULL
}

TEST(PlanTest, AggregateSkipsNulls) {
  Rows in{R({Value(1.0)}), R({Value::Null()})};
  Rows out = RunTree(AggregatePlan(ValuesPlan(in), {},
                               {{AggKind::kCount, Col(0)},
                                {AggKind::kAvg, Col(0)}}));
  EXPECT_EQ(1, out[0][0].AsInt());
  EXPECT_DOUBLE_EQ(1.0, out[0][1].AsDouble());
}

TEST(PlanTest, SortMultiKeyAndStability) {
  Rows in{R({Value(int64_t{1}), Value("b")}), R({Value(int64_t{2}), Value("a")}),
          R({Value(int64_t{1}), Value("a")})};
  Rows out = RunTree(SortPlan(ValuesPlan(in), {SortSpec{Col(0), true},
                                           SortSpec{Col(1), false}}));
  EXPECT_EQ("b", out[0][1].AsString());
  EXPECT_EQ("a", out[1][1].AsString());
  EXPECT_EQ(2, out[2][0].AsInt());
}

TEST(PlanTest, LimitAndDistinct) {
  Rows in{R({Value(int64_t{1})}), R({Value(int64_t{1})}), R({Value(int64_t{2})})};
  EXPECT_EQ(2u, RunTree(LimitPlan(ValuesPlan(in), 2)).size());
  EXPECT_EQ(2u, RunTree(DistinctPlan(ValuesPlan(in))).size());
  EXPECT_EQ(3u, RunTree(LimitPlan(ValuesPlan(in), 99)).size());
}

TEST(PlanTest, FormatRowsTruncates) {
  Rows in;
  for (int i = 0; i < 30; ++i) in.push_back(R({Value(int64_t{i})}));
  std::string s = FormatRows(in, {"n"}, 5);
  EXPECT_NE(std::string::npos, s.find("25 more"));
}

}  // namespace
}  // namespace bih
