#ifndef TPCBIH_NET_PROTOCOL_H_
#define TPCBIH_NET_PROTOCOL_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/value.h"

namespace bih {
namespace net {

// Length-prefixed binary wire protocol between bih clients and the serve
// front end. Every message travels in one frame:
//
//   [u32 payload_len][u32 crc32(payload)][payload]
//
// — the same frame shape (and the same CRC-32, WalCrc32) as the write-ahead
// log, so a frame torn mid-send is detected exactly like a frame torn
// mid-append: the length or the checksum gives it away, never a silent
// half-message. payload_len is bounded by kMaxFrameBytes; anything larger
// is a protocol error and closes the connection.
//
// The payload is a tagged Message (EncodeMessage/DecodeMessage below):
// fixed header fields first, then type-specific variable parts. Integers
// are little-endian host order (the benchmark targets one architecture;
// the CRC would reject a cross-endian peer's frames immediately). Values
// reuse the WAL's 1-byte-tagged encoding vocabulary.

// Frame geometry.
inline constexpr size_t kFrameHeaderBytes = 8;
// Upper bound on one payload (64 MiB): large enough for any benchmark
// result set, small enough that a corrupt length field cannot make the
// server try to buffer gigabytes.
inline constexpr uint32_t kMaxFrameBytes = 1u << 26;

inline constexpr uint32_t kProtocolVersion = 1;

enum class MsgType : uint8_t {
  // Client -> server.
  kHello = 1,    // open a session: text = tenant name
  kQuery = 2,    // text = SQL; deadline_ms = request budget (0 = none)
  kCancel = 3,   // cancel (conn_id, request_id); may ride any connection
  kStats = 4,    // request the server's stats JSON
  kPing = 5,     // liveness probe
  kGoodbye = 6,  // orderly close
  kExplain = 7,  // text = SQL (no EXPLAIN keyword); reply carries plan JSON
  // Server -> client (tag bit 6 set).
  kHelloOk = 64,     // session open; conn_id assigned
  kResult = 65,      // columns + rows of a successful query
  kError = 66,       // status_code/text/retry_hint/retry_after_ms
  kStatsReply = 67,  // text = stats JSON
  kPong = 68,
  kExplainReply = 69,  // text = {"optimizer":...,"plan":...} JSON
};

// One protocol message. A single struct (rather than one per type) keeps
// the codec small and the unused fields cost nothing on the wire: the
// encoder only emits the variable parts the type defines.
struct Message {
  MsgType type = MsgType::kPing;
  uint32_t version = kProtocolVersion;
  uint64_t conn_id = 0;     // kHelloOk (assigned), kCancel (target)
  uint64_t request_id = 0;  // echoes the request on every reply
  uint32_t deadline_ms = 0;     // kQuery: budget; 0 = no deadline
  uint32_t retry_after_ms = 0;  // kError: overload retry hint
  uint32_t scan_threads = 0;    // kHello: session ExecOptions override; 0 = server default
  uint8_t status_code = 0;      // kError: Status::Code of the failure
  std::string text;             // tenant / SQL / error message / stats JSON
  std::string retry_hint;       // kError(kUnavailable): how to get unstuck
  std::vector<std::string> columns;  // kResult
  std::vector<Row> rows;             // kResult
};

// Serializes `msg` into the payload encoding (no frame header).
void EncodeMessage(const Message& msg, std::string* payload);

// Parses a payload produced by EncodeMessage. Bounds-checked everywhere:
// a truncated or trailing-garbage payload is kIoError, never UB.
Status DecodeMessage(const uint8_t* data, size_t n, Message* out);

// Wraps a payload in the CRC-guarded frame.
void EncodeFrame(const std::string& payload, std::string* frame);

// Slices one frame off the front of data[0..n):
//   kOk         — *consumed bytes eaten, *payload holds the verified bytes;
//   kOutOfRange — the buffer holds only a frame prefix, read more;
//   kIoError    — oversized length or CRC mismatch: the stream is corrupt
//                 and the connection must die (resync is impossible).
Status DecodeFrame(const uint8_t* data, size_t n, size_t* consumed,
                   std::string* payload);

}  // namespace net
}  // namespace bih

#endif  // TPCBIH_NET_PROTOCOL_H_
