// Negative-compile fixture: touching a GUARDED_BY field without holding its
// mutex MUST fail under -Werror=thread-safety. If this file ever compiles
// cleanly with clang, the annotation plumbing is broken.
#include "common/thread_annotations.h"

namespace {

class Counter {
 public:
  int Bump() { return ++value_; }  // no lock: -Wthread-safety error

 private:
  bih::Mutex mu_;
  int value_ GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Counter c;
  return c.Bump();
}
