file(REMOVE_RECURSE
  "CMakeFiles/join_operators_test.dir/join_operators_test.cc.o"
  "CMakeFiles/join_operators_test.dir/join_operators_test.cc.o.d"
  "join_operators_test"
  "join_operators_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/join_operators_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
