#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "workload/queries.h"
#include "workload/tpch_queries.h"

namespace bih {
namespace {

Rows Canonical(Rows rows) {
  std::sort(rows.begin(), rows.end(), [](const Row& a, const Row& b) {
    for (size_t i = 0; i < std::min(a.size(), b.size()); ++i) {
      int c = a[i].Compare(b[i]);
      if (c != 0) return c < 0;
    }
    return a.size() < b.size();
  });
  return rows;
}

void ExpectRowsEq(const Rows& a, const Rows& b, const std::string& what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].size(), b[i].size()) << what;
    for (size_t c = 0; c < a[i].size(); ++c) {
      const Value& x = a[i][c];
      const Value& y = b[i][c];
      if (x.is_double() || y.is_double()) {
        ASSERT_EQ(x.is_null(), y.is_null()) << what;
        if (!x.is_null()) {
          double dx = x.AsDouble(), dy = y.AsDouble();
          double tol = 1e-6 * std::max({1.0, std::fabs(dx), std::fabs(dy)});
          ASSERT_NEAR(dx, dy, tol) << what << " row " << i << " col " << c;
        }
      } else {
        ASSERT_EQ(0, x.Compare(y)) << what << " row " << i << " col " << c;
      }
    }
  }
}

class TpchQueriesTest : public ::testing::TestWithParam<int> {
 protected:
  static void SetUpTestSuite() {
    if (ctx_ != nullptr) return;
    WorkloadConfig cfg;
    cfg.engine_letter = "A";
    cfg.h = 0.001;
    cfg.m = 0.001;
    cfg.seed = 99;
    ctx_ = new WorkloadContext(BuildWorkload(cfg));
    others_ = new std::vector<std::unique_ptr<TemporalEngine>>();
    for (const std::string letter : {"B", "C", "D"}) {
      others_->push_back(LoadEngine(letter, ctx_->initial, ctx_->history));
    }
    baseline_ = LoadBaseline(ctx_->end_state).release();
  }

  static WorkloadContext* ctx_;
  static std::vector<std::unique_ptr<TemporalEngine>>* others_;
  static TemporalEngine* baseline_;
};

WorkloadContext* TpchQueriesTest::ctx_ = nullptr;
std::vector<std::unique_ptr<TemporalEngine>>* TpchQueriesTest::others_ = nullptr;
TemporalEngine* TpchQueriesTest::baseline_ = nullptr;

// Every query, on every engine, under three temporal coordinates; engines
// must agree pairwise.
TEST_P(TpchQueriesTest, EnginesAgree) {
  const int q = GetParam();
  const std::vector<TemporalScanSpec> specs = {
      TemporalScanSpec::Current(),
      TemporalScanSpec::AppAsOf(ctx_->app_mid),
      TemporalScanSpec::SystemAsOf(ctx_->sys_v0.micros()),
  };
  const char* names[] = {"current", "app-tt", "sys-tt"};
  for (size_t s = 0; s < specs.size(); ++s) {
    Rows ref = Canonical(TpchQuery(q, *ctx_->engine, specs[s]));
    for (size_t i = 0; i < others_->size(); ++i) {
      Rows got = Canonical(TpchQuery(q, *(*others_)[i], specs[s]));
      ExpectRowsEq(ref, got, std::string("Q") + std::to_string(q) + " " +
                                 names[s] + " engine " +
                                 std::to_string(i + 1));
    }
  }
}

// The current-time temporal answer must equal the non-temporal baseline
// answer (they see the same data).
TEST_P(TpchQueriesTest, CurrentMatchesBaseline) {
  const int q = GetParam();
  Rows temporal =
      Canonical(TpchQuery(q, *ctx_->engine, TemporalScanSpec::Current()));
  Rows base = Canonical(TpchQuery(q, *baseline_, TemporalScanSpec::Current()));
  ExpectRowsEq(temporal, base, "Q" + std::to_string(q) + " vs baseline");
}

// System time travel to version 0 must see exactly the initial data: verify
// against a baseline loaded with the untouched dbgen output.
TEST_P(TpchQueriesTest, SystemTimeTravelSeesVersionZero) {
  const int q = GetParam();
  static TemporalEngine* v0_baseline = nullptr;
  if (v0_baseline == nullptr) {
    v0_baseline = LoadBaseline(ctx_->initial).release();
  }
  Rows traveled = Canonical(
      TpchQuery(q, *ctx_->engine,
                TemporalScanSpec::SystemAsOf(ctx_->sys_v0.micros())));
  Rows v0 = Canonical(TpchQuery(q, *v0_baseline, TemporalScanSpec::Current()));
  ExpectRowsEq(traveled, v0, "Q" + std::to_string(q) + " vs v0");
}

INSTANTIATE_TEST_SUITE_P(AllQueries, TpchQueriesTest, ::testing::Range(1, 23));

}  // namespace
}  // namespace bih
