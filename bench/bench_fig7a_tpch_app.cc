// Figure 7(a): the 22 TPC-H queries under application-time travel at
// current system time, reported as the slowdown ratio against a
// non-temporal baseline holding the same (end-state) data, plus the
// geometric mean per engine.
//
// Expected shape (Section 5.4.1): ratios above 1 almost everywhere, some
// queries orders of magnitude; the column store (C) shows the smallest
// geometric mean because its plans are scans either way.
#include <cmath>
#include <cstdio>

#include "bench_common.h"

namespace bih {
namespace bench {
namespace {

void Run() {
  SharedWorkload& w = SharedWorkload::Get();
  const WorkloadContext& ctx = w.ctx();
  auto baseline = LoadBaseline(ctx.end_state);

  PrintHeader("Figure 7(a): TPC-H with application-time travel, slowdown vs "
              "non-temporal baseline");
  std::printf("%-5s", "Q");
  for (const std::string& l : AllEngineLetters()) {
    std::printf(" %12s", ("System" + l).c_str());
  }
  std::printf(" %12s\n", "base[ms]");

  std::map<std::string, double> logsum;
  for (int q = 1; q <= 22; ++q) {
    double base_ms = TimeMs(
        [&] { TpchQuery(q, *baseline, TemporalScanSpec::Current()); });
    std::printf("Q%-4d", q);
    for (const std::string& letter : AllEngineLetters()) {
      TemporalEngine& e = w.Engine(letter);
      double ms = TimeMs(
          [&] { TpchQuery(q, e, TemporalScanSpec::AppAsOf(ctx.app_mid)); });
      double ratio = base_ms > 0 ? ms / base_ms : 0.0;
      logsum[letter] += std::log(std::max(ratio, 1e-6));
      std::printf(" %12.2f", ratio);
    }
    std::printf(" %12.3f\n", base_ms);
  }
  std::printf("%-5s", "geo");
  for (const std::string& letter : AllEngineLetters()) {
    std::printf(" %12.2f", std::exp(logsum[letter] / 22.0));
  }
  std::printf(
      "\n\nShape check (see EXPERIMENTS.md): the paper's cross-system "
      "ordering holds — B worst, then A, then D, C best — while absolute "
      "ratios sit below 1 here because the shared rule-based planner "
      "cannot lose optimizer rewrites the way the commercial systems "
      "did; the AS OF filter's result-size reduction remains.\n");
}

}  // namespace
}  // namespace bench
}  // namespace bih

int main() {
  bih::bench::Run();
  return 0;
}
