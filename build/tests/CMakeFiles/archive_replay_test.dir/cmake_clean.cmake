file(REMOVE_RECURSE
  "CMakeFiles/archive_replay_test.dir/archive_replay_test.cc.o"
  "CMakeFiles/archive_replay_test.dir/archive_replay_test.cc.o.d"
  "archive_replay_test"
  "archive_replay_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/archive_replay_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
