# Empty compiler generated dependencies file for bench_fig15_bitemporal.
# This may be replaced when dependencies are built.
