// Beyond the paper's figures: the recovery bound that checkpointing buys.
//
// Cold-start recovery without a checkpoint replays the entire mutation
// history, so its cost grows linearly with the archive (exactly the
// "history is unbounded" pressure of Section 2). A checkpoint converts
// that into (snapshot load) + (tail replay since the checkpoint): the
// operator picks the cadence, the cadence picks the bound.
//
// This bench loads one shared workload archive into an engine with the WAL
// enabled, taking N evenly spaced checkpoints during the replay
// (N = 0, 1, 2, 4, 8), then measures a cold RecoverEngine() from the
// resulting on-disk state. Reported per cadence: load cost, cumulative
// checkpoint cost, recovery time, and what recovery actually did (tail
// records replayed, snapshot rows loaded, segments scanned).
//
// BIH_NO_FSYNC is set for the whole process: the bench churns throwaway
// logs and measures CPU/replay cost, not device sync latency (the recovery
// path itself never syncs — it only reads).
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>

#include "bench_common.h"
#include "bih/generator.h"
#include "durability/checkpoint.h"
#include "durability/wal.h"
#include "engine/recovery.h"

namespace bih {
namespace bench {
namespace {

// Engine under test; recovery replay is engine-neutral, so one letter is
// representative (override with BIH_BENCH_ENGINE=B|C|D).
std::string EngineLetter() {
  const char* v = std::getenv("BIH_BENCH_ENGINE");
  return v == nullptr || *v == '\0' ? "A" : v;
}

// Removes every on-disk trace of the log at `base` (segments + checkpoint)
// so a stale file from an earlier run cannot leak into this measurement.
void RemoveLogFamily(const std::string& base) {
  for (const WalSegment& seg : ListWalSegments(base)) {
    std::filesystem::remove(seg.path);
  }
  std::filesystem::remove(Checkpointer::CheckpointPath(base));
}

void Run() {
  const std::string letter = EngineLetter();
  SharedWorkload& w = SharedWorkload::Get();
  const TpchData& initial = w.ctx().initial;
  const History& history = w.ctx().history;

  size_t total_ops = 0;
  for (const HistoryTransaction& txn : history) total_ops += txn.ops.size();
  PrintHeader("Recovery time vs checkpoint cadence (System " + letter +
              ", " + std::to_string(history.size()) + " scenarios, " +
              std::to_string(total_ops) + " ops)");
  std::printf("%-10s %12s %12s %12s %10s %10s %9s\n", "ckpts", "load_ms",
              "ckpt_ms", "recover_ms", "tail_recs", "snap_rows", "segments");

  const std::string dir =
      std::filesystem::temp_directory_path().generic_string();
  for (size_t ckpts : {size_t{0}, size_t{1}, size_t{2}, size_t{4},
                       size_t{8}}) {
    const std::string base =
        dir + "/bench_recovery_" + letter + "_" + std::to_string(ckpts) +
        ".wal";
    RemoveLogFamily(base);

    std::unique_ptr<TemporalEngine> engine = MakeEngine(letter);
    Status st = engine->EnableWal(base);
    if (!st.ok()) {
      std::fprintf(stderr, "EnableWal: %s\n", st.ToString().c_str());
      return;
    }
    Checkpointer cp(base);
    double ckpt_ms = 0.0;
    auto t0 = std::chrono::steady_clock::now();
    st = CreateBiHTables(*engine);
    if (st.ok()) st = LoadInitialData(*engine, initial);
    // Replay in ckpts+1 evenly sized slices with a checkpoint at each
    // internal boundary, modelling a server that checkpoints on a timer
    // while the load runs.
    const size_t slices = ckpts + 1;
    for (size_t s = 0; st.ok() && s < slices; ++s) {
      const size_t begin = history.size() * s / slices;
      const size_t end = history.size() * (s + 1) / slices;
      History slice(history.begin() + static_cast<ptrdiff_t>(begin),
                    history.begin() + static_cast<ptrdiff_t>(end));
      st = ReplayHistory(*engine, slice, /*batch_size=*/32);
      if (st.ok() && s + 1 < slices) {
        CheckpointInfo info;
        ckpt_ms += TimeMs([&] { st = cp.Write(engine.get(), &info); }, 1);
      }
    }
    if (!st.ok()) {
      std::fprintf(stderr, "load: %s\n", st.ToString().c_str());
      return;
    }
    engine->Maintain();
    auto t1 = std::chrono::steady_clock::now();
    const double load_ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count() - ckpt_ms;
    engine.reset();  // close the log: cold recovery starts from disk only

    std::unique_ptr<TemporalEngine> recovered;
    RecoveryReport report;
    const double recover_ms = TimeMs(
        [&] {
          recovered.reset();
          Status rs = RecoverEngine(letter, base, &recovered, &report);
          if (!rs.ok()) {
            std::fprintf(stderr, "recover: %s\n", rs.ToString().c_str());
          }
        },
        3);
    std::printf("%-10zu %12.1f %12.1f %12.1f %10llu %10llu %9llu\n", ckpts,
                load_ms, ckpt_ms, recover_ms,
                static_cast<unsigned long long>(report.records_total),
                static_cast<unsigned long long>(report.checkpoint_rows),
                static_cast<unsigned long long>(report.segments_scanned));
    RemoveLogFamily(base);
  }
}

}  // namespace
}  // namespace bench
}  // namespace bih

int main() {
  // Throwaway logs: measure replay cost, not device sync latency.
  setenv("BIH_NO_FSYNC", "1", 1);
  bih::bench::Run();
  return 0;
}
