file(REMOVE_RECURSE
  "CMakeFiles/bench_fig15_bitemporal.dir/bench_fig15_bitemporal.cc.o"
  "CMakeFiles/bench_fig15_bitemporal.dir/bench_fig15_bitemporal.cc.o.d"
  "bench_fig15_bitemporal"
  "bench_fig15_bitemporal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_bitemporal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
