#include "analysis/parser.h"

#include <cctype>

namespace bih {
namespace analysis {

namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool IsDigit(char c) { return std::isdigit(static_cast<unsigned char>(c)); }

}  // namespace

std::vector<Token> Tokenize(const std::vector<std::string>& raw) {
  std::vector<Token> out;
  bool in_block_comment = false;
  bool in_preproc = false;  // continued across lines by a trailing backslash
  for (size_t li = 0; li < raw.size(); ++li) {
    const std::string& line = raw[li];
    const size_t lineno = li + 1;
    size_t i = 0;
    if (in_preproc) {
      in_preproc = !line.empty() && line.back() == '\\';
      continue;
    }
    // Preprocessor lines carry macro definitions and includes whose text
    // would only confuse the declaration parser.
    if (!in_block_comment) {
      size_t first = line.find_first_not_of(" \t");
      if (first != std::string::npos && line[first] == '#') {
        in_preproc = !line.empty() && line.back() == '\\';
        continue;
      }
    }
    while (i < line.size()) {
      char c = line[i];
      char next = i + 1 < line.size() ? line[i + 1] : '\0';
      if (in_block_comment) {
        if (c == '*' && next == '/') {
          in_block_comment = false;
          ++i;
        }
        ++i;
        continue;
      }
      if (c == '/' && next == '/') break;  // line comment
      if (c == '/' && next == '*') {
        in_block_comment = true;
        i += 2;
        continue;
      }
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++i;
        continue;
      }
      // Raw string literal: R"delim( ... )delim" — contents kept.
      if (c == 'R' && next == '"') {
        size_t open = line.find('(', i + 2);
        if (open != std::string::npos) {
          std::string delim = line.substr(i + 2, open - (i + 2));
          std::string close = ")" + delim + "\"";
          std::string contents;
          size_t end = line.find(close, open + 1);
          if (end != std::string::npos) {
            contents = line.substr(open + 1, end - open - 1);
            i = end + close.size();
          } else {
            // Spans lines; swallow to the closing delimiter.
            contents = line.substr(open + 1);
            while (++li < raw.size()) {
              size_t e = raw[li].find(close);
              if (e != std::string::npos) {
                contents += "\n" + raw[li].substr(0, e);
                // Resume the outer loop on the remainder of this line.
                break;
              }
              contents += "\n" + raw[li];
            }
            out.push_back({Token::Kind::kString, contents, lineno});
            if (li >= raw.size()) return out;
            i = raw[li].find(close) + close.size();
            // fall through into the (new) current line
            const std::string& nl = raw[li];
            while (i < nl.size()) {
              // Re-enter the tokenizer on the tail by a recursive call on a
              // single synthetic line: simplest correct handling of the
              // rare multi-line raw string.
              std::vector<Token> tail = Tokenize({nl.substr(i)});
              for (Token& t : tail) {
                t.line = li + 1;
                out.push_back(std::move(t));
              }
              i = nl.size();
            }
            break;
          }
          out.push_back({Token::Kind::kString, contents, lineno});
          continue;
        }
      }
      if (c == '"') {
        std::string contents;
        ++i;
        while (i < line.size() && line[i] != '"') {
          if (line[i] == '\\' && i + 1 < line.size()) {
            contents += line[i];
            contents += line[i + 1];
            i += 2;
            continue;
          }
          contents += line[i];
          ++i;
        }
        ++i;  // closing quote
        out.push_back({Token::Kind::kString, contents, lineno});
        continue;
      }
      if (c == '\'') {
        // Digit separators (1'000'000) are glued into the number token.
        if (!out.empty() && out.back().kind == Token::Kind::kNumber &&
            IsDigit(next)) {
          ++i;
          continue;
        }
        std::string contents;
        ++i;
        while (i < line.size() && line[i] != '\'') {
          if (line[i] == '\\' && i + 1 < line.size()) i += 2;
          else ++i;
        }
        ++i;
        out.push_back({Token::Kind::kChar, contents, lineno});
        continue;
      }
      if (IsIdentStart(c)) {
        size_t b = i;
        while (i < line.size() && IsIdentChar(line[i])) ++i;
        out.push_back({Token::Kind::kIdent, line.substr(b, i - b), lineno});
        continue;
      }
      if (IsDigit(c)) {
        size_t b = i;
        while (i < line.size() &&
               (IsIdentChar(line[i]) || line[i] == '.')) {
          ++i;
        }
        out.push_back({Token::Kind::kNumber, line.substr(b, i - b), lineno});
        continue;
      }
      // Multi-char punctuators the parser needs to see whole.
      if (c == ':' && next == ':') {
        out.push_back({Token::Kind::kPunct, "::", lineno});
        i += 2;
        continue;
      }
      if (c == '-' && next == '>') {
        out.push_back({Token::Kind::kPunct, "->", lineno});
        i += 2;
        continue;
      }
      out.push_back({Token::Kind::kPunct, std::string(1, c), lineno});
      ++i;
    }
  }
  return out;
}

namespace {

// Annotation macros from src/common/thread_annotations.h the parser
// understands on declarations. EXCLUDES and the assertion forms carry no
// ordering/holding information the passes use, so they are stripped only.
enum class Macro {
  kNone,
  kGuardedBy,
  kPtGuardedBy,
  kAcquiredAfter,
  kAcquiredBefore,
  kRequires,
  kAcquire,
  kTryAcquire,
  kRelease,
  kStripOnly,  // EXCLUDES, ASSERT_CAPABILITY, CAPABILITY, RETURN_CAPABILITY...
};

Macro ClassifyMacro(const std::string& name) {
  if (name == "GUARDED_BY") return Macro::kGuardedBy;
  if (name == "PT_GUARDED_BY") return Macro::kPtGuardedBy;
  if (name == "ACQUIRED_AFTER") return Macro::kAcquiredAfter;
  if (name == "ACQUIRED_BEFORE") return Macro::kAcquiredBefore;
  if (name == "REQUIRES" || name == "REQUIRES_SHARED") return Macro::kRequires;
  if (name == "ACQUIRE" || name == "ACQUIRE_SHARED") return Macro::kAcquire;
  if (name == "TRY_ACQUIRE" || name == "TRY_ACQUIRE_SHARED") {
    return Macro::kTryAcquire;
  }
  if (name == "RELEASE" || name == "RELEASE_SHARED" ||
      name == "RELEASE_GENERIC") {
    return Macro::kRelease;
  }
  if (name == "EXCLUDES" || name == "CAPABILITY" ||
      name == "SCOPED_CAPABILITY" || name == "ASSERT_CAPABILITY" ||
      name == "ASSERT_SHARED_CAPABILITY" || name == "RETURN_CAPABILITY" ||
      name == "BIH_THREAD_ANNOTATION") {
    return Macro::kStripOnly;
  }
  return Macro::kNone;
}

bool IsCtrlKeyword(const std::string& s) {
  return s == "if" || s == "for" || s == "while" || s == "switch" ||
         s == "return" || s == "catch" || s == "sizeof" || s == "throw" ||
         s == "new" || s == "delete" || s == "case" || s == "do" ||
         s == "else" || s == "co_return" || s == "co_await";
}

struct Scope {
  enum class Kind { kNamespace, kClass, kBrace };
  Kind kind = Kind::kBrace;
  std::string name;
};

// Splits the token range [b, e) of an annotation macro's argument list
// (exclusive of the parens) on top-level commas and flattens each argument:
// a string literal argument becomes its contents verbatim, anything else
// becomes the identifier spine of the expression (`*shard_mu_[0]` ->
// "shard_mu_", `watchdog_mu_` -> "watchdog_mu_").
void FlattenArgs(const std::vector<Token>& toks, size_t b, size_t e,
                 std::vector<std::string>* out) {
  int depth = 0;
  size_t arg_start = b;
  auto emit = [&](size_t from, size_t to) {
    // Prefer a string literal; otherwise the last identifier that is not
    // an index/number (the field name of a member expression).
    for (size_t i = from; i < to; ++i) {
      if (toks[i].kind == Token::Kind::kString) {
        if (!toks[i].text.empty()) out->push_back(toks[i].text);
        return;
      }
    }
    std::string last_ident;
    for (size_t i = from; i < to; ++i) {
      if (toks[i].kind == Token::Kind::kIdent) last_ident = toks[i].text;
      if (toks[i].kind == Token::Kind::kPunct && toks[i].text == "[") break;
    }
    if (!last_ident.empty() && last_ident != "true" && last_ident != "false") {
      out->push_back(last_ident);
    }
  };
  for (size_t i = b; i < e; ++i) {
    const Token& t = toks[i];
    if (t.kind == Token::Kind::kPunct) {
      if (t.text == "(" || t.text == "[" || t.text == "<") ++depth;
      if (t.text == ")" || t.text == "]" || t.text == ">") --depth;
      if (t.text == "," && depth == 0) {
        emit(arg_start, i);
        arg_start = i + 1;
        continue;
      }
    }
  }
  if (arg_start < e) emit(arg_start, e);
}

// Scans the raw signature lines for "// bih-analyze: acquires(a, b)" /
// "releases(...)" directives — the escape hatch for acquisition patterns
// the declaration grammar cannot carry (runtime-indexed lock sets like the
// session's write-shard array).
void CollectDirectives(const FileText& text, size_t first_line,
                       size_t last_line, FunctionDecl* fn) {
  auto scan = [&](const char* key, std::vector<std::string>* out) {
    std::string needle = std::string("bih-analyze: ") + key + "(";
    size_t lo = first_line >= 2 ? first_line - 2 : 0;  // one line above too
    for (size_t li = lo; li < last_line && li < text.raw.size(); ++li) {
      size_t pos = text.raw[li].find(needle);
      if (pos == std::string::npos) continue;
      size_t b = pos + needle.size();
      size_t end = text.raw[li].find(')', b);
      if (end == std::string::npos) continue;
      std::string args = text.raw[li].substr(b, end - b);
      std::string cur;
      for (char c : args + ",") {
        if (c == ',') {
          if (!cur.empty()) out->push_back(cur);
          cur.clear();
        } else if (IsIdentChar(c) || c == ':') {
          cur += c;
        }
      }
    }
  };
  scan("acquires", &fn->acquires_caps);
  scan("releases", &fn->releases_caps);
}

class FileParser {
 public:
  explicit FileParser(const FileText& text) : text_(text) {
    model_.text = &text;
    model_.tokens = Tokenize(text.raw);
  }

  FileModel Run() {
    const std::vector<Token>& t = model_.tokens;
    std::vector<size_t> buf;  // token indexes of the pending declaration
    for (size_t i = 0; i < t.size(); ++i) {
      const Token& tok = t[i];
      if (tok.kind == Token::Kind::kPunct && tok.text == "{") {
        // Member brace initializer (`std::atomic<int> hits_{0};`,
        // `std::vector<int> v_ = {1, 2};`): skip the braces but KEEP the
        // pending declaration, so the ';' that follows flushes the field.
        if (IsMemberBraceInit(buf)) {
          i = SkipBalanced(i, "{", "}");
          continue;
        }
        i = HandleOpenBrace(buf, i);
        buf.clear();
        continue;
      }
      if (tok.kind == Token::Kind::kPunct && tok.text == "}") {
        if (!scopes_.empty()) scopes_.pop_back();
        buf.clear();
        continue;
      }
      if (tok.kind == Token::Kind::kPunct && tok.text == ";") {
        HandleDeclaration(buf);
        buf.clear();
        continue;
      }
      if (tok.kind == Token::Kind::kPunct && tok.text == ":" &&
          buf.size() == 1 && t[buf[0]].kind == Token::Kind::kIdent &&
          (t[buf[0]].text == "public" || t[buf[0]].text == "private" ||
           t[buf[0]].text == "protected")) {
        buf.clear();  // access specifier
        continue;
      }
      buf.push_back(i);
    }
    return std::move(model_);
  }

 private:
  const FileText& text_;
  FileModel model_;
  std::vector<Scope> scopes_;

  bool InClass() const {
    return !scopes_.empty() && scopes_.back().kind == Scope::Kind::kClass;
  }

  // True when a '{' inside a class body is a data-member brace
  // initializer rather than a scope: the pending declaration ends in the
  // member name (or '='), has no parameter list, and contains no
  // class/namespace/template head keyword.
  bool IsMemberBraceInit(const std::vector<size_t>& buf) const {
    if (!InClass() || buf.empty()) return false;
    const std::vector<Token>& t = model_.tokens;
    const Token& last = t[buf.back()];
    bool after_name = last.kind == Token::Kind::kIdent &&
                      !IsCtrlKeyword(last.text);
    bool after_eq = last.kind == Token::Kind::kPunct && last.text == "=";
    if (!after_name && !after_eq) return false;
    for (size_t k : buf) {
      const std::string& w = t[k].text;
      if (w == "class" || w == "struct" || w == "union" || w == "enum" ||
          w == "namespace" || w == "template") {
        return false;
      }
    }
    return FindSignatureParen(buf) == static_cast<size_t>(-1);
  }

  std::string ClassPath() const {
    std::string out;
    for (const Scope& s : scopes_) {
      if (s.kind != Scope::Kind::kClass) continue;
      if (!out.empty()) out += "::";
      out += s.name;
    }
    return out;
  }

  // Advances past a balanced token group starting at the opener index.
  size_t SkipBalanced(size_t open, const char* o, const char* c) const {
    const std::vector<Token>& t = model_.tokens;
    int depth = 0;
    size_t i = open;
    for (; i < t.size(); ++i) {
      if (t[i].kind != Token::Kind::kPunct) continue;
      if (t[i].text == o) ++depth;
      if (t[i].text == c && --depth == 0) return i;
    }
    return t.size() - 1;
  }

  // Returns the index of the first '(' in buf that starts a parameter
  // list (template-angle depth 0, not part of an annotation macro), or
  // npos. Annotation macro calls are skipped wholesale.
  size_t FindSignatureParen(const std::vector<size_t>& buf) const {
    const std::vector<Token>& t = model_.tokens;
    int angle = 0;
    for (size_t k = 0; k < buf.size(); ++k) {
      const Token& tok = t[buf[k]];
      if (tok.kind == Token::Kind::kIdent &&
          ClassifyMacro(tok.text) != Macro::kNone) {
        // Skip the macro's argument list if it has one.
        if (k + 1 < buf.size() && t[buf[k + 1]].text == "(") {
          int d = 0;
          while (k + 1 < buf.size()) {
            ++k;
            if (t[buf[k]].text == "(") ++d;
            if (t[buf[k]].text == ")" && --d == 0) break;
          }
        }
        continue;
      }
      if (tok.kind != Token::Kind::kPunct) continue;
      if (tok.text == "<") ++angle;
      if (tok.text == ">" && angle > 0) --angle;
      if (tok.text == "(" && angle == 0) return k;
    }
    return static_cast<size_t>(-1);
  }

  // Collects annotation macros appearing anywhere in buf into fn.
  void CollectSignatureAnnotations(const std::vector<size_t>& buf,
                                   FunctionDecl* fn) const {
    const std::vector<Token>& t = model_.tokens;
    for (size_t k = 0; k < buf.size(); ++k) {
      const Token& tok = t[buf[k]];
      if (tok.kind != Token::Kind::kIdent) continue;
      if (tok.text == "NO_THREAD_SAFETY_ANALYSIS") {
        fn->no_thread_safety_analysis = true;
        continue;
      }
      Macro m = ClassifyMacro(tok.text);
      if (m == Macro::kNone || m == Macro::kStripOnly) continue;
      if (k + 1 >= buf.size() || t[buf[k + 1]].text != "(") continue;
      // Argument token range at buf indexes [k+2, close).
      int d = 0;
      size_t close = k + 1;
      for (size_t j = k + 1; j < buf.size(); ++j) {
        if (t[buf[j]].text == "(") ++d;
        if (t[buf[j]].text == ")" && --d == 0) {
          close = j;
          break;
        }
      }
      std::vector<std::string> args;
      if (close > k + 2) {
        // Flatten over the real token indexes.
        FlattenArgs(t, buf[k + 2], buf[close - 1] + 1, &args);
      }
      if (m == Macro::kTryAcquire && !args.empty()) {
        // The first argument is the success value; FlattenArgs already
        // drops bare true/false, but a numeric success value survives.
        if (args.front() == "true" || args.front() == "false") {
          args.erase(args.begin());
        }
      }
      std::vector<std::string>* dst = nullptr;
      switch (m) {
        case Macro::kRequires: dst = &fn->requires_caps; break;
        case Macro::kAcquire:
        case Macro::kTryAcquire: dst = &fn->acquires_caps; break;
        case Macro::kRelease: dst = &fn->releases_caps; break;
        default: break;
      }
      if (dst != nullptr) {
        for (std::string& a : args) dst->push_back(std::move(a));
      }
    }
  }

  // buf opened a brace at token index `brace`. Classify and either push a
  // scope (namespace/class), record a function definition and skip its
  // body, or skip the brace group opaquely. Returns the index to resume at.
  size_t HandleOpenBrace(const std::vector<size_t>& buf, size_t brace) {
    const std::vector<Token>& t = model_.tokens;
    if (!buf.empty() && t[buf[0]].text == "namespace") {
      Scope s;
      s.kind = Scope::Kind::kNamespace;
      if (buf.size() >= 2 && t[buf[1]].kind == Token::Kind::kIdent) {
        s.name = t[buf[1]].text;
      }
      scopes_.push_back(s);
      return brace;
    }
    // Class head? Look for class/struct/union outside template params and
    // not preceded by "enum"; "enum class" and plain enums skip opaquely.
    for (size_t k = 0; k < buf.size(); ++k) {
      const std::string& w = t[buf[k]].text;
      if (w == "enum") {
        return SkipBalanced(brace, "{", "}");
      }
      if (w == "template") {
        // Skip the parameter list <...> (contains "class T").
        if (k + 1 < buf.size() && t[buf[k + 1]].text == "<") {
          int d = 0;
          while (k + 1 < buf.size()) {
            ++k;
            if (t[buf[k]].text == "<") ++d;
            if (t[buf[k]].text == ">" && --d == 0) break;
          }
        }
        continue;
      }
      if (w == "class" || w == "struct" || w == "union") {
        // Name: next identifier, skipping annotation macro calls.
        std::string name;
        for (size_t j = k + 1; j < buf.size(); ++j) {
          const Token& n = t[buf[j]];
          if (n.kind != Token::Kind::kIdent) break;
          Macro m = ClassifyMacro(n.text);
          if (m != Macro::kNone) {
            if (j + 1 < buf.size() && t[buf[j + 1]].text == "(") {
              int d = 0;
              while (j + 1 < buf.size()) {
                ++j;
                if (t[buf[j]].text == "(") ++d;
                if (t[buf[j]].text == ")" && --d == 0) break;
              }
            }
            continue;
          }
          if (n.text == "alignas" || n.text == "final") continue;
          name = n.text;
          break;
        }
        if (name.empty()) return SkipBalanced(brace, "{", "}");
        Scope s;
        s.kind = Scope::Kind::kClass;
        s.name = name;
        scopes_.push_back(s);
        ClassDecl cd;
        cd.name = ClassPath();
        cd.file = text_.path;
        cd.line = t[buf[k]].line;
        model_.classes.push_back(cd);
        return brace;
      }
    }
    // Function definition?
    size_t paren = FindSignatureParen(buf);
    if (paren != static_cast<size_t>(-1) && paren > 0) {
      // Reject statements/initializers: '=' before the paren.
      for (size_t k = 0; k < paren; ++k) {
        if (t[buf[k]].kind == Token::Kind::kPunct && t[buf[k]].text == "=") {
          return SkipBalanced(brace, "{", "}");
        }
      }
      const Token& name_tok = t[buf[paren - 1]];
      if (name_tok.kind == Token::Kind::kIdent &&
          !IsCtrlKeyword(name_tok.text)) {
        FunctionDecl fn;
        fn.name = name_tok.text;
        fn.file = text_.path;
        fn.line = name_tok.line;
        // Qualified name? Walk back over "A ::" pairs.
        std::vector<std::string> quals;
        size_t k = paren - 1;
        while (k >= 2 && t[buf[k - 1]].text == "::" &&
               t[buf[k - 2]].kind == Token::Kind::kIdent) {
          quals.insert(quals.begin(), t[buf[k - 2]].text);
          k -= 2;
        }
        std::string cls = ClassPath();
        for (const std::string& q : quals) {
          if (!cls.empty()) cls += "::";
          cls += q;
        }
        fn.cls = cls;
        if (!quals.empty() && !InClass()) {
          // Out-of-line definition: quals alone name the class (possibly
          // nested). ClassPath() was empty, so cls is already right.
        }
        CollectSignatureAnnotations(buf, &fn);
        size_t close = SkipBalanced(brace, "{", "}");
        fn.has_body = true;
        fn.body_begin = brace;
        fn.body_end = close + 1;
        CollectDirectives(text_, t[buf[0]].line, t[brace].line, &fn);
        model_.functions.push_back(std::move(fn));
        return close;
      }
    }
    // Anything else (brace initializer, lambda at namespace scope, ...)
    // is opaque.
    return SkipBalanced(brace, "{", "}");
  }

  // buf ended in ';' — a field, a method declaration, or noise.
  void HandleDeclaration(const std::vector<size_t>& buf) {
    const std::vector<Token>& t = model_.tokens;
    if (buf.empty()) return;
    const std::string& first = t[buf[0]].text;
    if (first == "using" || first == "typedef" || first == "friend" ||
        first == "static_assert" || first == "template" ||
        first == "extern" || first == "namespace") {
      return;
    }
    for (size_t k : buf) {
      if (t[k].kind == Token::Kind::kIdent && t[k].text == "operator") return;
    }
    size_t paren = FindSignatureParen(buf);
    if (paren != static_cast<size_t>(-1) && paren > 0 &&
        t[buf[paren - 1]].kind == Token::Kind::kIdent &&
        !IsCtrlKeyword(t[buf[paren - 1]].text)) {
      // Method/function declaration: keep its annotations so call-site
      // resolution can honour ACQUIRE/REQUIRES contracts declared in
      // headers (the definition often lives in a .cc without them).
      bool has_eq_before = false;
      for (size_t k = 0; k < paren; ++k) {
        if (t[buf[k]].text == "=") has_eq_before = true;
      }
      if (!has_eq_before) {
        FunctionDecl fn;
        fn.name = t[buf[paren - 1]].text;
        fn.file = text_.path;
        fn.line = t[buf[paren - 1]].line;
        fn.cls = ClassPath();
        CollectSignatureAnnotations(buf, &fn);
        CollectDirectives(text_, t[buf[0]].line,
                          t[buf[buf.size() - 1]].line + 1, &fn);
        model_.functions.push_back(std::move(fn));
        return;
      }
      return;
    }
    if (!InClass()) return;  // namespace-scope variable: out of scope
    ParseField(buf);
  }

  void ParseField(const std::vector<size_t>& buf) {
    const std::vector<Token>& t = model_.tokens;
    FieldDecl fd;
    fd.cls = ClassPath();
    fd.line = t[buf[0]].line;
    std::vector<size_t> decl;  // buf entries with annotations removed
    for (size_t k = 0; k < buf.size(); ++k) {
      const Token& tok = t[buf[k]];
      if (tok.kind == Token::Kind::kIdent) {
        Macro m = ClassifyMacro(tok.text);
        if (m != Macro::kNone) {
          size_t close = k;
          std::vector<std::string> args;
          if (k + 1 < buf.size() && t[buf[k + 1]].text == "(") {
            int d = 0;
            for (size_t j = k + 1; j < buf.size(); ++j) {
              if (t[buf[j]].text == "(") ++d;
              if (t[buf[j]].text == ")" && --d == 0) {
                close = j;
                break;
              }
            }
            if (close > k + 2) {
              FlattenArgs(t, buf[k + 2], buf[close - 1] + 1, &args);
            }
          }
          switch (m) {
            case Macro::kGuardedBy: fd.guarded_by = std::move(args); break;
            case Macro::kPtGuardedBy:
              fd.pt_guarded_by = std::move(args);
              break;
            case Macro::kAcquiredAfter:
              for (std::string& a : args) {
                fd.acquired_after.push_back(std::move(a));
              }
              break;
            case Macro::kAcquiredBefore:
              for (std::string& a : args) {
                fd.acquired_before.push_back(std::move(a));
              }
              break;
            default: break;
          }
          k = close;
          continue;
        }
        if (tok.text == "static" || tok.text == "constexpr") {
          fd.is_static = true;
          continue;
        }
        if (tok.text == "mutable") continue;
        if (tok.text == "const") fd.is_const = true;
        if (tok.text == "atomic" || tok.text == "atomic_flag") {
          fd.is_atomic = true;
        }
        if (tok.text == "Mutex" || tok.text == "SharedMutex") {
          fd.is_mutex = true;
        }
        if (tok.text == "CondVar") fd.is_condvar = true;
      }
      decl.push_back(buf[k]);
    }
    // Truncate the initializer.
    size_t end = decl.size();
    int angle = 0;
    for (size_t k = 0; k < decl.size(); ++k) {
      const Token& tok = t[decl[k]];
      if (tok.kind != Token::Kind::kPunct) continue;
      if (tok.text == "<") ++angle;
      if (tok.text == ">" && angle > 0) --angle;
      if (tok.text == "=" && angle == 0) {
        end = k;
        break;
      }
    }
    // Name: last identifier at angle depth 0 (stop at an array bracket).
    angle = 0;
    size_t name_at = static_cast<size_t>(-1);
    for (size_t k = 0; k < end; ++k) {
      const Token& tok = t[decl[k]];
      if (tok.kind == Token::Kind::kPunct) {
        if (tok.text == "<") ++angle;
        if (tok.text == ">" && angle > 0) --angle;
        if (tok.text == "[") break;
        continue;
      }
      if (tok.kind == Token::Kind::kIdent && angle == 0) name_at = k;
    }
    if (name_at == static_cast<size_t>(-1)) return;
    fd.name = t[decl[name_at]].text;
    for (size_t k = 0; k < end; ++k) {
      if (k == name_at) continue;
      if (!fd.type.empty()) fd.type += " ";
      fd.type += t[decl[k]].text;
    }
    if (fd.name.empty() || fd.type.empty()) return;
    // Attach to the innermost open class.
    for (auto it = model_.classes.rbegin(); it != model_.classes.rend();
         ++it) {
      if (it->name == fd.cls) {
        if (fd.is_mutex) it->owns_mutex = true;
        it->fields.push_back(std::move(fd));
        return;
      }
    }
  }
};

}  // namespace

FileModel ParseFile(const FileText& text) { return FileParser(text).Run(); }

RepoModel ParseTree(const std::vector<FileText>& texts) {
  RepoModel repo;
  repo.files.reserve(texts.size());
  for (const FileText& t : texts) repo.files.push_back(ParseFile(t));
  for (size_t fi = 0; fi < repo.files.size(); ++fi) {
    FileModel& fm = repo.files[fi];
    for (ClassDecl& c : fm.classes) {
      auto it = repo.classes.find(c.name);
      if (it == repo.classes.end()) {
        repo.classes.emplace(c.name, c);
      } else if (it->second.fields.empty() && !c.fields.empty()) {
        it->second = c;  // prefer the defining occurrence
      }
    }
    for (size_t gi = 0; gi < fm.functions.size(); ++gi) {
      const FunctionDecl& fn = fm.functions[gi];
      std::string qualified =
          fn.cls.empty() ? fn.name : fn.cls + "::" + fn.name;
      if (fn.has_body) {
        repo.defs_by_name[fn.name].push_back({fi, gi});
        repo.defs_by_qualified[qualified].push_back({fi, gi});
      }
      FunctionDecl& merged = repo.annotations[qualified];
      if (merged.name.empty()) {
        merged.name = fn.name;
        merged.cls = fn.cls;
        merged.file = fn.file;
        merged.line = fn.line;
      }
      auto append = [](std::vector<std::string>* dst,
                       const std::vector<std::string>& src) {
        for (const std::string& s : src) {
          bool dup = false;
          for (const std::string& d : *dst) dup = dup || d == s;
          if (!dup) dst->push_back(s);
        }
      };
      append(&merged.requires_caps, fn.requires_caps);
      append(&merged.acquires_caps, fn.acquires_caps);
      append(&merged.releases_caps, fn.releases_caps);
      merged.no_thread_safety_analysis |= fn.no_thread_safety_analysis;
    }
  }
  return repo;
}

}  // namespace analysis
}  // namespace bih
