// Fixture: must come back clean with --no-block Staging::mu_. The sync
// runs after the mutex is dropped (the released-mutex device-wait
// pattern), and the condition-variable wait releases the mutex it is
// given, so neither site blocks while holding mu_.
class Staging {
 public:
  void Persist() {
    {
      MutexLock lock(mu_);
      ++flushes_;
    }
    ::fdatasync(fd_);
  }

  void AwaitWork() {
    MutexLock lock(mu_);
    while (flushes_ == 0) {
      cv_.Wait(mu_);
    }
  }

 private:
  Mutex mu_;
  CondVar cv_;
  int flushes_ GUARDED_BY(mu_) = 0;
  const int fd_ = -1;
};
