file(REMOVE_RECURSE
  "libbih_temporal.a"
)
