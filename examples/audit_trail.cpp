// Audit scenario: trace the evolution of individual records through the
// generated TPC-BiH history — the pure-key ("audit") query class.
//
// Shows: loading the benchmark workload, finding the most-updated customer,
// key-in-time queries along each axis, Top-N version access, and comparing
// two snapshots of the same record.
#include <cstdio>

#include "workload/context.h"
#include "workload/queries.h"
#include "tpch/schema.h"

using namespace bih;

int main() {
  WorkloadConfig cfg;
  cfg.engine_letter = "A";
  cfg.h = 0.002;   // small TPC-H population
  cfg.m = 0.004;   // 4000 update scenarios
  cfg.seed = 7;
  std::printf("loading TPC-BiH workload (h=%.3f, m=%.3f)...\n", cfg.h, cfg.m);
  WorkloadContext ctx = BuildWorkload(cfg);
  TemporalEngine& db = *ctx.engine;

  // Tuning: the audit queries live on key access; add the Key+Time indexes.
  Status st = ApplyIndexSetting(db, IndexSetting::kKeyTime);
  BIH_CHECK_MSG(st.ok(), st.ToString());

  std::printf("auditing customer %lld (the most-updated key)\n\n",
              static_cast<long long>(ctx.hot_custkey));

  // Full system-time history of the record: every stored version.
  TemporalScanSpec full;
  full.system_time = TemporalSelector::All();
  full.app_time = TemporalSelector::All();
  Rows versions = K1(db, ctx.hot_custkey, full);
  const int sys_from = db.GetTableDef("CUSTOMER").schema.num_columns();
  std::printf("%zu versions on record:\n", versions.size());
  for (const Row& v : versions) {
    std::printf("  balance %10.2f  recorded at %s\n",
                v[customer::kAcctBal].AsDouble(),
                v[static_cast<size_t>(sys_from)].AsTimestamp().ToString().c_str());
  }
  std::printf("(index used: %s)\n\n",
              db.last_stats().index_name.empty()
                  ? "none"
                  : db.last_stats().index_name.c_str());

  // The latest three versions (K4) — "who changed this last?"
  Rows latest = K4(db, ctx.hot_custkey, full, 3);
  std::printf("latest %zu changes, newest first:\n", latest.size());
  for (const Row& v : latest) {
    std::printf("  balance %10.2f at %s\n", v[customer::kAcctBal].AsDouble(),
                v[static_cast<size_t>(sys_from)].AsTimestamp().ToString().c_str());
  }

  // The version directly before the newest one (K5): the classic
  // "what did it say before the last change" audit question.
  Rows prev = K5(db, ctx.hot_custkey, full);
  if (!prev.empty()) {
    std::printf("\nbefore the last change the balance was %.2f\n",
                prev[0][customer::kAcctBal].AsDouble());
  }

  // Value-based audit (K6): which customers ever had a balance beyond
  // 9900 at any point of the recorded history?
  TemporalScanSpec sys_axis;
  sys_axis.system_time = TemporalSelector::All();
  Rows rich = K6(db, 9900.0, Value(), sys_axis);
  std::printf("\n%zu versions across all customers recorded a balance over "
              "9900\n",
              rich.size());

  // Cross-check: the balance as of mid-history vs now.
  Rows then = K1(db, ctx.hot_custkey,
                 TemporalScanSpec::SystemAsOf(ctx.sys_mid.micros()));
  Rows now = K1(db, ctx.hot_custkey, TemporalScanSpec::Current());
  if (!then.empty() && !now.empty()) {
    std::printf("\nbalance mid-history: %.2f   balance now: %.2f\n",
                then[0][customer::kAcctBal].AsDouble(),
                now[0][customer::kAcctBal].AsDouble());
  }
  return 0;
}
