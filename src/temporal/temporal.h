#ifndef TPCBIH_TEMPORAL_TEMPORAL_H_
#define TPCBIH_TEMPORAL_TEMPORAL_H_

#include <cstdint>
#include <string>

#include "common/period.h"

namespace bih {

// How a query pins one time dimension. Mirrors the options SQL:2011 offers:
//  - kImplicitCurrent: the dimension is not mentioned at all. For system
//    time this is the "implicit current" case of Section 5.3.5: engines with
//    a current/history split may answer from the current partition alone.
//  - kPoint: AS OF <t>  (time travel).
//  - kRange: FROM <t1> TO <t2>  (slice).
//  - kAll: the full axis (e.g., the ALL query / non-sequenced access).
struct TemporalSelector {
  enum class Kind { kImplicitCurrent, kPoint, kRange, kAll };

  Kind kind = Kind::kImplicitCurrent;
  int64_t point = 0;   // valid when kind == kPoint
  Period range;        // valid when kind == kRange

  static TemporalSelector ImplicitCurrent() { return {}; }
  static TemporalSelector AsOf(int64_t t) {
    TemporalSelector s;
    s.kind = Kind::kPoint;
    s.point = t;
    return s;
  }
  static TemporalSelector Between(int64_t from, int64_t to) {
    TemporalSelector s;
    s.kind = Kind::kRange;
    s.range = Period(from, to);
    return s;
  }
  static TemporalSelector All() {
    TemporalSelector s;
    s.kind = Kind::kAll;
    return s;
  }

  // True when a version valid over `valid` qualifies under this selector,
  // given `now` as the current point of the axis.
  bool Matches(const Period& valid, int64_t now) const {
    switch (kind) {
      case Kind::kImplicitCurrent:
        return valid.Contains(now);
      case Kind::kPoint:
        return valid.Contains(point);
      case Kind::kRange:
        return valid.Overlaps(range);
      case Kind::kAll:
        return true;
    }
    return false;
  }

  std::string ToString() const;
};

// Full temporal coordinates for a table access: one selector per dimension.
// `app_period_index` picks among multiple application-time periods (ORDERS
// has two: ACTIVE_TIME and RECEIVABLE_TIME).
struct TemporalScanSpec {
  TemporalSelector system_time;
  TemporalSelector app_time;
  int app_period_index = 0;

  static TemporalScanSpec Current() { return {}; }
  static TemporalScanSpec SystemAsOf(int64_t t) {
    TemporalScanSpec s;
    s.system_time = TemporalSelector::AsOf(t);
    return s;
  }
  static TemporalScanSpec AppAsOf(int64_t t, int period_index = 0) {
    TemporalScanSpec s;
    s.app_time = TemporalSelector::AsOf(t);
    s.app_period_index = period_index;
    return s;
  }
  static TemporalScanSpec BothAsOf(int64_t sys, int64_t app,
                                   int period_index = 0) {
    TemporalScanSpec s;
    s.system_time = TemporalSelector::AsOf(sys);
    s.app_time = TemporalSelector::AsOf(app);
    s.app_period_index = period_index;
    return s;
  }
};

}  // namespace bih

#endif  // TPCBIH_TEMPORAL_TEMPORAL_H_
