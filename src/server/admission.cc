#include "server/admission.h"

#include <string>

namespace bih {

Status AdmissionController::Admit(QueryContext* ctx) {
  MutexLock lock(mu_);
  if (inflight_ < cfg_.max_inflight && queued_ == 0) {
    ++inflight_;
    ++admitted_;
    return Status::OK();
  }
  if (queued_ >= cfg_.max_queued) {
    ++shed_;
    return Status::ResourceExhausted(
        "admission queue full; retry after " +
        std::to_string(cfg_.retry_after.count()) + "ms");
  }
  ++queued_;
  // Wait in short slices so a queued query still honours its own deadline
  // and cancellation; nobody should time out *because* it sat in a queue
  // without noticing. (The predicate is this explicit loop, not a lambda,
  // so the analysis can see the guarded reads happen under mu_.)
  while (inflight_ >= cfg_.max_inflight) {
    cv_.WaitFor(mu_, std::chrono::milliseconds(1));
    if (ctx != nullptr) {
      Status s = ctx->CheckNow();
      if (!s.ok()) {
        --queued_;
        ++abandoned_queued_;
        cv_.NotifyOne();
        return s;
      }
    }
  }
  --queued_;
  ++inflight_;
  ++admitted_;
  return Status::OK();
}

uint32_t AdmissionController::RetryAfterMs(const Status& s) {
  if (s.code() != Status::Code::kResourceExhausted) return 0;
  static constexpr char kMarker[] = "retry after ";
  const std::string& msg = s.message();
  const size_t pos = msg.find(kMarker);
  if (pos == std::string::npos) return 0;
  uint32_t ms = 0;
  for (size_t i = pos + sizeof(kMarker) - 1;
       i < msg.size() && msg[i] >= '0' && msg[i] <= '9'; ++i) {
    ms = ms * 10 + static_cast<uint32_t>(msg[i] - '0');
  }
  return ms;
}

void AdmissionController::Release() {
  {
    MutexLock lock(mu_);
    --inflight_;
  }
  cv_.NotifyOne();
}

AdmissionController::Stats AdmissionController::GetStats() const {
  MutexLock lock(mu_);
  Stats s;
  s.admitted = admitted_;
  s.shed = shed_;
  s.abandoned_queued = abandoned_queued_;
  s.inflight = inflight_;
  s.queued = queued_;
  return s;
}

}  // namespace bih
