// Figure 8: key-in-time over the full history (K1): the evolution of one
// customer along application time (at current and past system time), both
// time axes, and system time, without indexes vs the Key+Time setting.
//
// Expected shape (Section 5.5.1): current-system access is cheap via the
// system key index; past-system access degenerates to history scans until
// the Key+Time index is added; System B keeps a reconstruction penalty;
// System D pays scans even for current data (no split); System C scans.
#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "exec/parallel.h"

namespace bih {
namespace bench {
namespace {

std::vector<std::unique_ptr<TemporalEngine>>* g_engines =
    new std::vector<std::unique_ptr<TemporalEngine>>();

void RegisterFor(const std::string& label, TemporalEngine* e,
                 const WorkloadContext& ctx, bool thread_sweep = false) {
  const int64_t key = ctx.hot_custkey;
  const int64_t sys_mid = ctx.sys_mid.micros();
  const int64_t app_late = ctx.app_late;
  auto add = [&](const std::string& name, TemporalScanSpec spec) {
    benchmark::RegisterBenchmark(
        ("Fig8/" + name + "/" + label).c_str(),
        [e, key, spec](benchmark::State& state) {
          for (auto _ : state) benchmark::DoNotOptimize(K1(*e, key, spec));
        })
        ->Unit(benchmark::kMillisecond)
        ->Iterations(5);
  };
  TemporalScanSpec app_curr;  // app evolution at current system time
  app_curr.app_time = TemporalSelector::All();
  add("K1_app_curr_sys", app_curr);
  TemporalScanSpec app_past;  // app evolution at past system time
  app_past.app_time = TemporalSelector::All();
  app_past.system_time = TemporalSelector::AsOf(sys_mid);
  add("K1_app_past_sys", app_past);
  TemporalScanSpec both;
  both.app_time = TemporalSelector::All();
  both.system_time = TemporalSelector::All();
  add("K1_both_times", both);
  if (thread_sweep) {
    // Morsel-parallel scaling of the history-heavy key query: without
    // indexes this is a full scan of every partition, exactly the path the
    // parallel scheduler splits.
    for (int t : {1, 2, 4, 8}) {
      benchmark::RegisterBenchmark(
          ("Fig8/K1_both_times/threads:" + std::to_string(t) + "/" + label)
              .c_str(),
          [e, key, both, t](benchmark::State& state) {
            SetDefaultScanThreads(t);
            for (auto _ : state) benchmark::DoNotOptimize(K1(*e, key, both));
            SetDefaultScanThreads(0);
          })
          ->Unit(benchmark::kMillisecond)
          ->Iterations(5);
    }
  }
  TemporalScanSpec sys_axis;  // system evolution at one app point
  sys_axis.system_time = TemporalSelector::All();
  sys_axis.app_time = TemporalSelector::AsOf(app_late);
  add("K1_sys_curr_app", sys_axis);
}

void RegisterAll() {
  SharedWorkload& w = SharedWorkload::Get();
  const WorkloadContext& ctx = w.ctx();
  for (const std::string& letter : AllEngineLetters()) {
    g_engines->push_back(w.Fresh(letter));
    RegisterFor("System" + letter + "_no_index", g_engines->back().get(), ctx,
                /*thread_sweep=*/true);
    g_engines->push_back(w.Fresh(letter));
    Status st =
        ApplyIndexSetting(*g_engines->back(), IndexSetting::kKeyTime);
    BIH_CHECK_MSG(st.ok(), st.ToString());
    RegisterFor("System" + letter + "_keytime", g_engines->back().get(), ctx);
  }
}

}  // namespace
}  // namespace bench
}  // namespace bih

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  bih::bench::RegisterAll();
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
