#include <map>

#include <gtest/gtest.h>

#include "common/chrono.h"
#include "common/json.h"
#include "common/period.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/value.h"

namespace bih {
namespace {

TEST(DateTest, RoundTripYMD) {
  for (int y : {1970, 1992, 1995, 1998, 2000, 2024}) {
    for (int m : {1, 2, 6, 12}) {
      for (int d : {1, 15, 28}) {
        Date date = Date::FromYMD(y, m, d);
        int yy, mm, dd;
        date.ToYMD(&yy, &mm, &dd);
        EXPECT_EQ(y, yy);
        EXPECT_EQ(m, mm);
        EXPECT_EQ(d, dd);
      }
    }
  }
}

TEST(DateTest, EpochIsZero) {
  EXPECT_EQ(0, Date::FromYMD(1970, 1, 1).days());
}

TEST(DateTest, KnownDayNumbers) {
  // 1992-01-01 is 8035 days after the epoch.
  EXPECT_EQ(8035, Date::FromYMD(1992, 1, 1).days());
  EXPECT_EQ(1, Date::FromYMD(1970, 1, 2).days());
}

TEST(DateTest, LeapYearHandling) {
  Date feb29 = Date::FromYMD(1992, 2, 29);
  Date mar1 = Date::FromYMD(1992, 3, 1);
  EXPECT_EQ(1, feb29.DaysUntil(mar1));
  // 1900 is not a leap year in the Gregorian calendar.
  Date feb28_1900 = Date::FromYMD(1900, 2, 28);
  Date mar1_1900 = Date::FromYMD(1900, 3, 1);
  EXPECT_EQ(1, feb28_1900.DaysUntil(mar1_1900));
}

TEST(DateTest, FormatAndParse) {
  Date d = Date::FromYMD(1995, 6, 17);
  EXPECT_EQ("1995-06-17", d.ToString());
  Date parsed;
  ASSERT_TRUE(Date::Parse("1995-06-17", &parsed));
  EXPECT_EQ(d, parsed);
  EXPECT_FALSE(Date::Parse("not a date", &parsed));
  EXPECT_FALSE(Date::Parse("1995-13-01", &parsed));
}

TEST(DateTest, Ordering) {
  EXPECT_LT(Date::FromYMD(1992, 1, 1), Date::FromYMD(1998, 12, 31));
  EXPECT_EQ(Date::FromYMD(1992, 1, 1).AddDays(365),
            Date::FromYMD(1992, 12, 31));
}

TEST(TimestampTest, DateConversion) {
  Date d = Date::FromYMD(1995, 6, 17);
  Timestamp t = Timestamp::FromDate(d);
  EXPECT_EQ(d, t.ToDate());
  EXPECT_EQ(d.AddDays(1), t.AddMicros(Timestamp::kMicrosPerDay).ToDate());
}

TEST(TimestampTest, Format) {
  Timestamp t = Timestamp::FromDate(Date::FromYMD(1995, 6, 17))
                    .AddMicros(3 * 3600 * Timestamp::kMicrosPerSecond + 42);
  EXPECT_EQ("1995-06-17 03:00:00.000042", t.ToString());
}

TEST(PeriodTest, ContainsAndOverlap) {
  Period p(10, 20);
  EXPECT_TRUE(p.Contains(10));
  EXPECT_TRUE(p.Contains(19));
  EXPECT_FALSE(p.Contains(20));
  EXPECT_FALSE(p.Contains(9));
  EXPECT_TRUE(p.Overlaps(Period(19, 30)));
  EXPECT_FALSE(p.Overlaps(Period(20, 30)));  // half-open: meets, no overlap
  EXPECT_TRUE(p.Meets(Period(20, 30)));
  EXPECT_TRUE(p.Contains(Period(12, 18)));
  EXPECT_FALSE(p.Contains(Period(12, 21)));
}

TEST(PeriodTest, OpenEnded) {
  Period open = Period::From(100);
  EXPECT_TRUE(open.IsOpenEnded());
  EXPECT_TRUE(open.Contains(1'000'000'000));
  EXPECT_TRUE(open.Overlaps(Period(0, 101)));
  EXPECT_FALSE(open.Overlaps(Period(0, 100)));
}

TEST(PeriodTest, Intersect) {
  Period a(10, 20), b(15, 30);
  EXPECT_EQ(Period(15, 20), a.Intersect(b));
  EXPECT_TRUE(a.Intersect(Period(20, 30)).Empty());
}

TEST(RngTest, Deterministic) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, UniformIntBounds) {
  Rng rng(1);
  for (int i = 0; i < 10000; ++i) {
    int64_t v = rng.UniformInt(-5, 17);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 17);
  }
  EXPECT_EQ(3, rng.UniformInt(3, 3));
}

TEST(RngTest, UniformIntIsRoughlyUniform) {
  Rng rng(2);
  std::map<int64_t, int> counts;
  const int kDraws = 60000;
  for (int i = 0; i < kDraws; ++i) ++counts[rng.UniformInt(0, 5)];
  for (const auto& [v, n] : counts) {
    EXPECT_NEAR(n, kDraws / 6, kDraws / 60) << "value " << v;
  }
}

TEST(RngTest, WeightedChoiceFollowsWeights) {
  Rng rng(3);
  std::vector<double> weights{0.7, 0.2, 0.1};
  std::vector<int> counts(3, 0);
  const int kDraws = 50000;
  for (int i = 0; i < kDraws; ++i) ++counts[rng.WeightedChoice(weights)];
  EXPECT_NEAR(counts[0], kDraws * 0.7, kDraws * 0.02);
  EXPECT_NEAR(counts[1], kDraws * 0.2, kDraws * 0.02);
  EXPECT_NEAR(counts[2], kDraws * 0.1, kDraws * 0.02);
}

TEST(RngTest, ZipfSkewsLow) {
  Rng rng(4);
  int64_t low = 0, total = 20000;
  for (int i = 0; i < total; ++i) {
    int64_t v = rng.Zipf(1000, 0.8);
    ASSERT_GE(v, 1);
    ASSERT_LE(v, 1000);
    if (v <= 10) ++low;
  }
  // Zipf(0.8): the first 10 of 1000 values should take far more than 1% of
  // the mass.
  EXPECT_GT(low, total / 10);
}

TEST(RngTest, ExponentialMean) {
  Rng rng(5);
  double sum = 0.0;
  const int kDraws = 50000;
  for (int i = 0; i < kDraws; ++i) sum += rng.Exponential(10.0);
  EXPECT_NEAR(sum / kDraws, 10.0, 0.5);
}

TEST(ValueTest, TypePredicates) {
  EXPECT_TRUE(Value().is_null());
  EXPECT_TRUE(Value(int64_t{1}).is_int());
  EXPECT_TRUE(Value(1.5).is_double());
  EXPECT_TRUE(Value("x").is_string());
}

TEST(ValueTest, CompareSameType) {
  EXPECT_LT(Value(int64_t{1}).Compare(Value(int64_t{2})), 0);
  EXPECT_EQ(Value(int64_t{2}).Compare(Value(int64_t{2})), 0);
  EXPECT_GT(Value("b").Compare(Value("a")), 0);
  EXPECT_LT(Value(1.5).Compare(Value(2.5)), 0);
}

TEST(ValueTest, CompareMixedNumeric) {
  EXPECT_EQ(Value(int64_t{2}).Compare(Value(2.0)), 0);
  EXPECT_LT(Value(int64_t{1}).Compare(Value(1.5)), 0);
}

TEST(ValueTest, NullSortsFirst) {
  EXPECT_LT(Value().Compare(Value(int64_t{0})), 0);
  EXPECT_EQ(Value().Compare(Value()), 0);
  EXPECT_GT(Value("a").Compare(Value()), 0);
}

TEST(ValueTest, HashConsistentWithEquality) {
  EXPECT_EQ(Value(int64_t{42}).Hash(), Value(int64_t{42}).Hash());
  EXPECT_EQ(Value("abc").Hash(), Value("abc").Hash());
}

TEST(ValueTest, DateTimestampAccessors) {
  Date d = Date::FromYMD(1994, 4, 4);
  EXPECT_EQ(d, Value(d).AsDate());
  Timestamp t(123456789);
  EXPECT_EQ(t, Value(t).AsTimestamp());
}

TEST(ValueTest, ToString) {
  EXPECT_EQ("NULL", Value().ToString());
  EXPECT_EQ("42", Value(int64_t{42}).ToString());
  EXPECT_EQ("abc", Value("abc").ToString());
}

TEST(StatusTest, UnavailableCarriesRetryHint) {
  Status s = Status::Unavailable("store is read-only",
                                 "recover from the log and retry");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(Status::Code::kUnavailable, s.code());
  EXPECT_EQ("recover from the log and retry", s.retry_hint());
  // The hint is folded into the message after a fixed marker, so callers
  // that only print ToString() still see it.
  EXPECT_EQ("Unavailable: store is read-only; retry: recover from the log and retry",
            s.ToString());
}

TEST(StatusTest, UnavailableWithoutHint) {
  Status s = Status::Unavailable("maintenance window");
  EXPECT_EQ(Status::Code::kUnavailable, s.code());
  EXPECT_EQ("", s.retry_hint());
  EXPECT_EQ("Unavailable: maintenance window", s.ToString());
}

TEST(StatusTest, RetryHintIsEmptyForOtherCodes) {
  // Even a message that happens to contain the marker text yields no hint
  // unless the status really is kUnavailable.
  Status io = Status::IoError("disk failed; retry: later");
  EXPECT_EQ("", io.retry_hint());
  EXPECT_EQ("", Status::OK().retry_hint());
}

TEST(JsonTest, EscapePassesPlainTextThrough) {
  EXPECT_EQ("", JsonEscape(""));
  EXPECT_EQ("plain ascii 123", JsonEscape("plain ascii 123"));
}

TEST(JsonTest, EscapeHandlesQuotesAndBackslashes) {
  EXPECT_EQ("say \\\"hi\\\"", JsonEscape("say \"hi\""));
  EXPECT_EQ("a\\\\b", JsonEscape("a\\b"));
}

TEST(JsonTest, EscapeHandlesControlCharacters) {
  EXPECT_EQ("line\\nbreak", JsonEscape("line\nbreak"));
  EXPECT_EQ("tab\\there", JsonEscape("tab\there"));
  EXPECT_EQ("\\r\\b\\f", JsonEscape("\r\b\f"));
  // Other control bytes take the \u form.
  EXPECT_EQ("nul\\u0000end", JsonEscape(std::string("nul\0end", 7)));
  EXPECT_EQ("\\u001b[0m", JsonEscape("\x1b[0m"));
}

TEST(JsonTest, QuoteWrapsAndEscapes) {
  EXPECT_EQ("\"\"", JsonQuote(""));
  EXPECT_EQ("\"tenant \\\"a\\\"\"", JsonQuote("tenant \"a\""));
}

}  // namespace
}  // namespace bih
