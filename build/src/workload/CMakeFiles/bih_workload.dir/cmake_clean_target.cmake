file(REMOVE_RECURSE
  "libbih_workload.a"
)
