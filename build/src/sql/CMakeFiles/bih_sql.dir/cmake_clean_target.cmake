file(REMOVE_RECURSE
  "libbih_sql.a"
)
