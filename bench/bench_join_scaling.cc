// Parallel-join scaling sweep (the Fig. 7 temporal-join axis, asked of the
// morsel executor): the CUSTOMER-ORDERS sort-merge join plus a grouped
// aggregation over the full version history, executed through the plan tree
// at 1, 2, 4 and 8 threads. Every lane's rows are checked byte-identical to
// the serial lane before its timing counts — a lane that diverges is a
// correctness bug, not a data point.
//
// A second pair of lanes runs the same filtered join unoptimized vs through
// OptimizePlan, reporting rows_examined for both: the optimizer's pruning
// claim (temporal rewrite + pushdown + scan folding) as a number the
// artifact diff can watch.
//
// Knobs: BIH_JSCALE_H / BIH_JSCALE_M workload scale (0.02), BIH_JSCALE_REPS
// timed repetitions per lane (3). Output: a human table plus
// BENCH_join_scaling.json (path via BIH_JOIN_SCALING_JSON). With
// BIH_JSCALE_GATE=1 the process fails (exit 1) unless the 4-thread lane
// reaches BIH_JSCALE_MIN_SPEEDUP (default 2.0x) over serial — the
// acceptance gate for the parallel join/aggregation path.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "exec/optimizer.h"
#include "exec/parallel.h"
#include "exec/plan.h"
#include "tpch/schema.h"
#include "workload/context.h"

namespace bih {
namespace bench {
namespace {

double EnvDouble(const char* name, double fallback) {
  if (const char* v = std::getenv(name)) {
    const double x = std::atof(v);
    if (x > 0.0) return x;
  }
  return fallback;
}

int EnvInt(const char* name, int fallback, int lo, int hi) {
  if (const char* v = std::getenv(name)) {
    const int x = std::atoi(v);
    if (x >= lo && x <= hi) return x;
  }
  return fallback;
}

TemporalScanSpec FullHistory() {
  TemporalScanSpec spec;
  spec.system_time = TemporalSelector::All();
  spec.app_time = TemporalSelector::All();
  return spec;
}

ScanRequest Req(const char* table) {
  ScanRequest req;
  req.table = table;
  req.temporal = FullHistory();
  // The scans are pinned serial in every lane: this bench measures the
  // join/aggregation operators, so the (identical) input production cost
  // must not move between lanes. Per-scan options win over the
  // Execute-level ones by the MergeExecOptions contract.
  req.exec.scan_threads = 1;
  return req;
}

// The measured tree: full-history merge join feeding a grouped aggregation
// — both parallel operators in one pipeline, like the paper's temporal-join
// queries.
PlanPtr JoinAggPlan() {
  return AggregatePlan(
      MergeJoinPlan(ScanPlan(Req("CUSTOMER")), ScanPlan(Req("ORDERS")),
                    {customer::kCustKey}, {orders::kCustKey}),
      {customer::kNationKey},
      // CUSTOMER's scan width is 9 user + 2 system columns.
      {{AggKind::kSum, Col(11 + orders::kTotalPrice)},
       {AggKind::kCount, nullptr}});
}

bool SameRows(const Rows& a, const Rows& b) {
  if (a.size() != b.size()) return false;
  for (size_t r = 0; r < a.size(); ++r) {
    if (a[r].size() != b[r].size()) return false;
    for (size_t c = 0; c < a[r].size(); ++c) {
      if (!(a[r][c] == b[r][c])) return false;
    }
  }
  return true;
}

uint64_t TotalExamined(const PlanNode& n) {
  uint64_t sum = n.stats.scan.rows_examined;
  for (const PlanPtr& c : n.children) sum += TotalExamined(*c);
  return sum;
}

int Run() {
  const double h = EnvDouble("BIH_JSCALE_H", 0.02);
  const double m = EnvDouble("BIH_JSCALE_M", 0.02);
  const int reps = EnvInt("BIH_JSCALE_REPS", 3, 1, 100);

  WorkloadConfig cfg;
  cfg.engine_letter = "A";
  cfg.h = h;
  cfg.m = m;
  cfg.seed = 42;
  std::printf("bench_join_scaling: building workload (h=%.4f, m=%.4f, "
              "System A)...\n", h, m);
  WorkloadContext ctx = BuildWorkload(cfg);
  TemporalEngine& eng = ctx.eng();
  ScanScheduler pool(7);

  PlanPtr plan = JoinAggPlan();

  // Serial baseline: rows, per-rep wall time, and the row count that turns
  // times into throughput.
  ExecOptions serial;
  serial.scan_threads = 1;
  Rows want;
  if (!Execute(*plan, eng, serial, nullptr, &want).ok()) {
    std::fprintf(stderr, "serial run failed\n");
    return 1;
  }
  const uint64_t joined = plan->children[0]->stats.rows_output;
  std::printf("join output %llu rows into %zu groups; %d reps/lane\n",
              static_cast<unsigned long long>(joined), want.size(), reps);

  std::string json_lanes;
  double serial_ms = 0.0, speedup4 = 0.0;
  for (int threads : {1, 2, 4, 8}) {
    ExecOptions opts;
    opts.scan_threads = threads;
    opts.scheduler = &pool;
    Rows got;
    // Correctness first: the lane's output must match serial exactly.
    if (!Execute(*plan, eng, opts, nullptr, &got).ok() ||
        !SameRows(want, got)) {
      std::fprintf(stderr, "%d-thread lane diverged from serial output\n",
                   threads);
      return 1;
    }
    double best_ms = 0.0;
    for (int r = 0; r < reps; ++r) {
      const auto t0 = std::chrono::steady_clock::now();
      if (!Execute(*plan, eng, opts, nullptr, &got).ok()) return 1;
      const double ms = std::chrono::duration<double, std::milli>(
                            std::chrono::steady_clock::now() - t0)
                            .count();
      if (r == 0 || ms < best_ms) best_ms = ms;
    }
    if (threads == 1) serial_ms = best_ms;
    const double speedup = best_ms > 0.0 ? serial_ms / best_ms : 0.0;
    if (threads == 4) speedup4 = speedup;
    const double mrows_s =
        best_ms > 0.0 ? static_cast<double>(joined) / best_ms / 1000.0 : 0.0;
    std::printf("%2d threads  %9.2f ms  %8.2f Mrows/s  speedup %.2fx\n",
                threads, best_ms, mrows_s, speedup);
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "%s{\"threads\":%d,\"best_ms\":%.3f,\"mrows_per_s\":%.3f,"
                  "\"speedup\":%.3f}",
                  json_lanes.empty() ? "" : ",", threads, best_ms, mrows_s,
                  speedup);
    json_lanes += buf;
  }

  // Optimizer lanes: the same join under a filter carrying a visibility
  // predicate, a sargable key equality and a pushable conjunct — run raw,
  // then through OptimizePlan. rows_examined is the pruning claim: the
  // equality folds into the left scan (index path), the visibility pair
  // rewrites the right scan to AS OF.
  const int width = eng.ScanSchema("ORDERS").num_columns();
  const Value t(ctx.sys_mid.micros());
  auto filtered = [&]() {
    return FilterPlan(
        HashJoinPlan(ScanPlan(Req("CUSTOMER")), ScanPlan(Req("ORDERS")),
                     {customer::kCustKey}, {orders::kCustKey}, 14),
        And(And(Le(Col(11 + width - 2), Lit(t)),
                Gt(Col(11 + width - 1), Lit(t))),
            And(Eq(Col(customer::kCustKey), Lit(ctx.hot_custkey)),
                Gt(Col(customer::kAcctBal), Lit(0.0)))));
  };
  PlanPtr unopt = filtered();
  Rows uo = RunPlan(*unopt, eng);
  const uint64_t examined_unopt = TotalExamined(*unopt);
  PlanPtr opt = filtered();
  OptimizerReport rep;
  OptimizePlan(&opt, eng, &rep);
  Rows oo = RunPlan(*opt, eng);
  const uint64_t examined_opt = TotalExamined(*opt);
  if (!SameRows(uo, oo)) {
    std::fprintf(stderr, "optimized plan diverged from unoptimized output\n");
    return 1;
  }
  std::printf("optimizer: rows_examined %llu -> %llu (%s)\n",
              static_cast<unsigned long long>(examined_unopt),
              static_cast<unsigned long long>(examined_opt),
              rep.ToString().c_str());

  const char* path = std::getenv("BIH_JOIN_SCALING_JSON");
  const std::string out = path != nullptr ? path : "BENCH_join_scaling.json";
  std::FILE* f = std::fopen(out.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out.c_str());
    return 1;
  }
  std::fprintf(
      f,
      "{\"bench\":\"join_scaling\",\"h\":%.4f,\"m\":%.4f,\"join_rows\":%llu,"
      "\"speedup_at_4\":%.3f,\"lanes\":[%s],\"optimizer\":{"
      "\"rows_examined_unopt\":%llu,\"rows_examined_opt\":%llu,"
      "\"predicates_pushed\":%d,\"conjuncts_folded\":%d,"
      "\"temporal_rewrites\":%d,\"scans_pruned\":%d}}\n",
      h, m, static_cast<unsigned long long>(joined), speedup4,
      json_lanes.c_str(), static_cast<unsigned long long>(examined_unopt),
      static_cast<unsigned long long>(examined_opt), rep.predicates_pushed,
      rep.conjuncts_folded, rep.temporal_rewrites, rep.scans_pruned);
  std::fclose(f);
  std::printf("wrote %s\n", out.c_str());

  if (EnvInt("BIH_JSCALE_GATE", 0, 0, 1) == 1) {
    const unsigned hw = std::thread::hardware_concurrency();
    if (hw < 4) {
      // A 4-thread speedup target is unmeetable on fewer than 4 hardware
      // threads; report loudly instead of failing on a starved machine.
      std::printf("gate skipped: only %u hardware thread(s) available\n", hw);
      return 0;
    }
    const double min = EnvDouble("BIH_JSCALE_MIN_SPEEDUP", 2.0);
    if (speedup4 < min) {
      std::fprintf(stderr,
                   "GATE FAILED: %.2fx at 4 threads (required >= %.2fx)\n",
                   speedup4, min);
      return 1;
    }
    std::printf("gate passed: %.2fx at 4 threads (required >= %.2fx)\n",
                speedup4, min);
  }
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace bih

int main() { return bih::bench::Run(); }
