// Shared reference machinery for the differential (fuzz) tests: a brute
// force bitemporal model that keeps every version ever created with explicit
// system intervals, plus the ITEM table both fuzz tests drive. The model
// shares no storage code with the engines, which is what makes agreement
// meaningful.
#ifndef TPCBIH_TESTS_REFERENCE_MODEL_H_
#define TPCBIH_TESTS_REFERENCE_MODEL_H_

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "catalog/schema.h"
#include "common/period.h"
#include "common/value.h"
#include "temporal/sequenced.h"
#include "temporal/temporal.h"

namespace bih {

inline TableDef FuzzItemDef() {
  TableDef def;
  def.name = "ITEM";
  def.schema = Schema({{"ID", ColumnType::kInt},
                       {"PRICE", ColumnType::kDouble},
                       {"NOTE", ColumnType::kString},
                       {"VB", ColumnType::kDate},
                       {"VE", ColumnType::kDate}});
  def.primary_key = {0};
  def.app_periods = {{"VALIDITY", 3, 4}};
  def.system_versioned = true;
  return def;
}

// Reference model: every version with explicit system interval.
struct ModelVersion {
  Row row;          // user columns
  int64_t sys_from;
  int64_t sys_to;   // Period::kForever while visible
};

class Model {
 public:
  void Insert(Row row, int64_t ts) {
    versions_.push_back({std::move(row), ts, Period::kForever});
  }

  std::vector<size_t> CurrentOf(int64_t id) const {
    std::vector<size_t> out;
    for (size_t i = 0; i < versions_.size(); ++i) {
      if (versions_[i].sys_to == Period::kForever &&
          versions_[i].row[0].AsInt() == id) {
        out.push_back(i);
      }
    }
    return out;
  }

  bool UpdateCurrent(int64_t id, const std::vector<ColumnAssignment>& set,
                     int64_t ts) {
    std::vector<size_t> cur = CurrentOf(id);
    if (cur.empty()) return false;
    for (size_t i : cur) {
      Row next = versions_[i].row;
      for (const ColumnAssignment& a : set) {
        next[static_cast<size_t>(a.column)] = a.value;
      }
      versions_[i].sys_to = ts;
      versions_.push_back({std::move(next), ts, Period::kForever});
    }
    return true;
  }

  bool Sequenced(int64_t id, const Period& window,
                 const std::vector<ColumnAssignment>& set, int mode,
                 int64_t ts) {
    std::vector<size_t> cur = CurrentOf(id);
    if (cur.empty()) return false;
    std::vector<Row> rows;
    for (size_t i : cur) rows.push_back(versions_[i].row);
    SequencedOps ops;
    switch (mode) {
      case 0:
        ops = PlanSequencedUpdate(rows, 3, 4, window, set);
        break;
      case 1:
        ops = PlanSequencedDelete(rows, 3, 4, window);
        break;
      default:
        ops = PlanOverwriteUpdate(rows, 3, 4, window, set);
        break;
    }
    for (size_t vi : ops.to_close) versions_[cur[vi]].sys_to = ts;
    for (Row& r : ops.to_insert) {
      versions_.push_back({std::move(r), ts, Period::kForever});
    }
    return true;
  }

  bool DeleteCurrent(int64_t id, int64_t ts) {
    std::vector<size_t> cur = CurrentOf(id);
    if (cur.empty()) return false;
    for (size_t i : cur) versions_[i].sys_to = ts;
    return true;
  }

  // Brute-force evaluation of a temporal scan (scan-schema rows).
  std::vector<Row> Query(const TemporalScanSpec& spec, int64_t now,
                         int64_t key_or_minus1) const {
    std::vector<Row> out;
    for (const ModelVersion& v : versions_) {
      Period sys(v.sys_from, v.sys_to);
      if (!spec.system_time.Matches(sys, now)) continue;
      Period app(v.row[3].AsInt(), v.row[4].AsInt());
      if (spec.app_time.kind != TemporalSelector::Kind::kImplicitCurrent &&
          !spec.app_time.Matches(app, now)) {
        continue;
      }
      if (key_or_minus1 >= 0 && v.row[0].AsInt() != key_or_minus1) continue;
      Row r = v.row;
      r.push_back(Value(v.sys_from));
      r.push_back(Value(v.sys_to));
      out.push_back(std::move(r));
    }
    return out;
  }

 private:
  std::vector<ModelVersion> versions_;
};

inline std::vector<Row> Canonical(std::vector<Row> rows) {
  std::sort(rows.begin(), rows.end(), [](const Row& a, const Row& b) {
    for (size_t i = 0; i < a.size(); ++i) {
      int c = a[i].Compare(b[i]);
      if (c != 0) return c < 0;
    }
    return false;
  });
  return rows;
}

}  // namespace bih

#endif  // TPCBIH_TESTS_REFERENCE_MODEL_H_
