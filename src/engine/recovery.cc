#include "engine/recovery.h"

#include <vector>

namespace bih {

std::string RecoveryReport::ToString() const {
  std::string s = "recovery: " + std::to_string(records_applied) + "/" +
                  std::to_string(records_total) + " records applied, " +
                  std::to_string(txns_committed) + " commits, " +
                  std::to_string(bytes_salvaged) + "/" +
                  std::to_string(bytes_total) + " bytes salvaged";
  if (ops_dropped > 0) {
    s += ", " + std::to_string(ops_dropped) + " uncommitted ops dropped";
  }
  if (tail_dropped) {
    s += ", tail dropped (" + tail_reason + ")";
  }
  return s;
}

Status RecoverEngine(const std::string& letter, const std::string& wal_path,
                     std::unique_ptr<TemporalEngine>* out,
                     RecoveryReport* report) {
  *report = RecoveryReport();
  WalScanResult scan;
  BIH_RETURN_IF_ERROR(ScanWal(wal_path, &scan));
  report->records_total = scan.records.size();
  report->bytes_total = scan.bytes_total;
  report->bytes_salvaged = scan.bytes_salvaged;
  report->tail_dropped = scan.tail_dropped;
  report->tail_reason = scan.tail_reason;

  std::unique_ptr<TemporalEngine> engine = MakeEngine(letter);
  // Records inside a transaction only become durable with its commit
  // marker, so they are staged here and replayed when the marker arrives;
  // a log ending mid-transaction loses exactly that suffix.
  std::vector<const WalRecord*> staged;
  size_t idx = 0;
  for (const WalRecord& rec : scan.records) {
    ++idx;
    if (rec.kind == WalRecord::Kind::kCommit) {
      for (const WalRecord* op : staged) {
        Status st = engine->ApplyWalRecord(*op);
        if (!st.ok()) {
          return Status::Internal("wal replay failed at record " +
                                  std::to_string(idx) + ": " + st.ToString());
        }
        ++report->records_applied;
      }
      staged.clear();
      // Advance the clock past the batch stamp even when the batch was
      // empty, mirroring the Begin() tick of the original run.
      Status commit_st = engine->ApplyWalRecord(rec);
      if (!commit_st.ok()) {
        return Status::Internal("wal replay failed at commit record " +
                                std::to_string(idx) + ": " +
                                commit_st.ToString());
      }
      ++report->txns_committed;
      report->last_commit_ts = rec.ts;
      continue;
    }
    if (rec.in_txn()) {
      staged.push_back(&rec);
      continue;
    }
    Status st = engine->ApplyWalRecord(rec);
    if (!st.ok()) {
      return Status::Internal("wal replay failed at record " +
                              std::to_string(idx) + ": " + st.ToString());
    }
    ++report->records_applied;
    if (rec.kind != WalRecord::Kind::kCreateTable) {
      ++report->txns_committed;
      report->last_commit_ts = rec.ts;
    }
  }
  report->ops_dropped = staged.size();
  // Post-recovery housekeeping, same as the loaders run after replay.
  engine->Maintain();
  *out = std::move(engine);
  return Status::OK();
}

}  // namespace bih
