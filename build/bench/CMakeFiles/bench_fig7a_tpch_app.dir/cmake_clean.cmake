file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7a_tpch_app.dir/bench_fig7a_tpch_app.cc.o"
  "CMakeFiles/bench_fig7a_tpch_app.dir/bench_fig7a_tpch_app.cc.o.d"
  "bench_fig7a_tpch_app"
  "bench_fig7a_tpch_app.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7a_tpch_app.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
