# Empty compiler generated dependencies file for bih_sql.
# This may be replaced when dependencies are built.
