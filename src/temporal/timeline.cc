#include "temporal/timeline.h"

#include <algorithm>
#include <map>
#include <set>

namespace bih {

std::vector<TimelineSlice> TemporalAggregate(std::vector<TimelineEntry> entries,
                                             TemporalAggKind kind) {
  struct Event {
    int64_t at;
    bool open;
    size_t entry;
  };
  std::vector<Event> events;
  events.reserve(entries.size() * 2);
  for (size_t i = 0; i < entries.size(); ++i) {
    if (entries[i].period.Empty()) continue;
    events.push_back({entries[i].period.begin, true, i});
    if (!entries[i].period.IsOpenEnded()) {
      events.push_back({entries[i].period.end, false, i});
    }
  }
  std::sort(events.begin(), events.end(), [](const Event& a, const Event& b) {
    if (a.at != b.at) return a.at < b.at;
    return a.open < b.open;  // process closes before opens at equal time
  });

  std::vector<TimelineSlice> out;
  double sum = 0.0;
  int64_t count = 0;
  // Multiset of active values for kMax/kMin.
  std::multiset<double> active;
  const bool needs_order =
      kind == TemporalAggKind::kMax || kind == TemporalAggKind::kMin;

  auto aggregate_now = [&]() -> double {
    switch (kind) {
      case TemporalAggKind::kSum:
        return sum;
      case TemporalAggKind::kCount:
        return static_cast<double>(count);
      case TemporalAggKind::kAvg:
        return count == 0 ? 0.0 : sum / static_cast<double>(count);
      case TemporalAggKind::kMax:
        return active.empty() ? 0.0 : *active.rbegin();
      case TemporalAggKind::kMin:
        return active.empty() ? 0.0 : *active.begin();
    }
    return 0.0;
  };

  size_t i = 0;
  int64_t prev_at = 0;
  bool have_prev = false;
  while (i < events.size()) {
    int64_t at = events[i].at;
    if (have_prev && count > 0 && prev_at < at) {
      out.push_back(TimelineSlice{Period(prev_at, at), aggregate_now(), count});
    }
    while (i < events.size() && events[i].at == at) {
      const Event& e = events[i];
      double v = entries[e.entry].value;
      if (e.open) {
        sum += v;
        ++count;
        if (needs_order) active.insert(v);
      } else {
        sum -= v;
        --count;
        if (needs_order) active.erase(active.find(v));
      }
      ++i;
    }
    prev_at = at;
    have_prev = true;
  }
  // Entries open-ended at kForever produce a final slice to infinity.
  if (count > 0) {
    out.push_back(
        TimelineSlice{Period(prev_at, Period::kForever), aggregate_now(), count});
  }
  return out;
}

void IntervalJoin(
    const std::vector<Period>& left, const std::vector<Period>& right,
    const std::function<void(size_t, size_t, const Period&)>& fn) {
  // Sort both sides by begin; sweep the merged begin order keeping an active
  // list per side pruned lazily by end.
  std::vector<size_t> lorder(left.size()), rorder(right.size());
  for (size_t i = 0; i < left.size(); ++i) lorder[i] = i;
  for (size_t i = 0; i < right.size(); ++i) rorder[i] = i;
  std::sort(lorder.begin(), lorder.end(), [&](size_t a, size_t b) {
    return left[a].begin < left[b].begin;
  });
  std::sort(rorder.begin(), rorder.end(), [&](size_t a, size_t b) {
    return right[a].begin < right[b].begin;
  });

  // Active sets ordered by end for pruning.
  std::multimap<int64_t, size_t> lactive, ractive;
  size_t li = 0, ri = 0;
  while (li < lorder.size() || ri < rorder.size()) {
    bool take_left;
    if (li >= lorder.size()) {
      take_left = false;
    } else if (ri >= rorder.size()) {
      take_left = true;
    } else {
      take_left = left[lorder[li]].begin <= right[rorder[ri]].begin;
    }
    if (take_left) {
      size_t idx = lorder[li++];
      const Period& p = left[idx];
      if (p.Empty()) continue;
      // Drop right intervals that ended at or before p.begin.
      while (!ractive.empty() && ractive.begin()->first <= p.begin) {
        ractive.erase(ractive.begin());
      }
      for (const auto& [end, ridx] : ractive) {
        Period overlap = p.Intersect(right[ridx]);
        if (overlap.Valid()) fn(idx, ridx, overlap);
      }
      lactive.emplace(p.end, idx);
    } else {
      size_t idx = rorder[ri++];
      const Period& p = right[idx];
      if (p.Empty()) continue;
      while (!lactive.empty() && lactive.begin()->first <= p.begin) {
        lactive.erase(lactive.begin());
      }
      for (const auto& [end, lidx] : lactive) {
        Period overlap = left[lidx].Intersect(p);
        if (overlap.Valid()) fn(lidx, idx, overlap);
      }
      ractive.emplace(p.end, idx);
    }
  }
}

}  // namespace bih
