file(REMOVE_RECURSE
  "libbih_history.a"
)
