#ifndef TPCBIH_ENGINE_SYSTEM_C_H_
#define TPCBIH_ENGINE_SYSTEM_C_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "engine/engine.h"
#include "engine/index_set.h"
#include "engine/scan_util.h"
#include "exec/parallel.h"
#include "storage/column_table.h"

namespace bih {

// Architecture C: in-memory column store with native system time only
// (Section 2.6).
//  * Every table is columnar with two hidden columns VALID_FROM/VALID_TO
//    tracking the system time of a version; visible rows have an open
//    VALID_TO.
//  * Storage is split into a write-optimized delta, a read-optimized main,
//    and a history partition. The merge operation moves delta rows into
//    main and relocates invalidated versions into the history partition.
//  * Execution is scan-based: tuning indexes are accepted but never used,
//    matching the measurement that B-trees bring System C no benefit.
//  * Application time has no native support; the period columns are plain
//    data and the engine wrapper emulates sequenced semantics client-side,
//    like the paper's "simulated application time".
class SystemCEngine : public TemporalEngine {
 public:
  // Delta size that triggers an automatic merge.
  static constexpr size_t kMergeThreshold = 1 << 16;

  std::string name() const override { return "SystemC"; }
  bool native_app_time() const override { return false; }

  Status DoCreateTable(const TableDef& def) override;
  Status CreateIndex(const IndexSpec& spec) override;
  Status DropIndexes(const std::string& table) override;
  const TableDef& GetTableDef(const std::string& table) const override;
  Schema ScanSchema(const std::string& table) const override;
  bool HasTable(const std::string& table) const override {
    return tables_.count(table) > 0;
  }

  Status DoInsert(const std::string& table, Row row) override;
  Status DoUpdateCurrent(const std::string& table, const std::vector<Value>& key,
                       const std::vector<ColumnAssignment>& set) override;
  Status DoUpdateSequenced(const std::string& table,
                         const std::vector<Value>& key, int period_index,
                         const Period& period,
                         const std::vector<ColumnAssignment>& set) override;
  Status DoUpdateOverwrite(const std::string& table,
                         const std::vector<Value>& key, int period_index,
                         const Period& period,
                         const std::vector<ColumnAssignment>& set) override;
  Status DoDeleteCurrent(const std::string& table,
                       const std::vector<Value>& key) override;
  Status DoDeleteSequenced(const std::string& table,
                         const std::vector<Value>& key, int period_index,
                         const Period& period) override;

  std::vector<std::string> ListTables() const override;
  Status DoInstallVersion(const std::string& table, const Row& stored) override;

  void Scan(const ScanRequest& req, const RowCallback& cb) override;
  TableStats GetTableStats(const std::string& table) const override;

  // Delta->main merge for every table (history relocation included).
  void Maintain() override;

 private:
  enum class Part : uint8_t { kDelta = 0, kMain = 1 };

  struct Loc {
    Part part;
    RowId rid;
  };

  struct KeyHash {
    size_t operator()(const IndexKey& k) const {
      size_t h = 0x345678;
      for (const Value& v : k) h = h * 1000003ULL ^ v.Hash();
      return h;
    }
  };
  struct KeyEq {
    bool operator()(const IndexKey& a, const IndexKey& b) const {
      return CompareKeys(a, b) == 0;
    }
  };

  struct Table {
    TableDef def;
    Schema stored_schema;  // user columns + VALID_FROM + VALID_TO
    ColumnTable delta;
    ColumnTable main;
    ColumnTable history;
    // Inverted index on the key columns, like the column store's dictionary
    // based key access; maps a key to its visible versions.
    std::unordered_map<IndexKey, std::vector<Loc>, KeyHash, KeyEq> current_by_key;
    std::vector<std::string> ignored_indexes;  // accepted but unused

    Table(TableDef d, Schema stored)
        : def(std::move(d)), delta(stored), main(stored), history(stored) {
      stored_schema = stored;
    }
  };

  Table* Find(const std::string& name);
  const Table* Find(const std::string& name) const;

  ColumnTable* PartOf(Table* t, Part p) {
    return p == Part::kDelta ? &t->delta : &t->main;
  }

  IndexKey KeyOf(const Table& t, const Row& row) const;
  void MergeTable(Table* t);
  void MaybeMerge(Table* t);

  Loc AppendVersion(Table* t, Row user_row, Timestamp ts);
  void InvalidateVersion(Table* t, const Loc& loc, Timestamp ts);

  Status ApplySequenced(const std::string& table, const std::vector<Value>& key,
                        int period_index, const Period& period,
                        const std::vector<ColumnAssignment>& set, int mode);

  void ScanPartition(const Table& t, const ColumnTable& part, bool is_history,
                     const ScanRequest& req, const TemporalCols& tc,
                     const ParallelScanPlan& plan, ExecStats* stats,
                     bool* stopped, const RowCallback& cb);

  // Morsel-range entry point of the columnar partition scan: filters slots
  // [begin, end) of `part` into `out`, materializing checked columns before
  // the predicates and the remaining emit columns after, exactly like the
  // serial loop. Thread-safe for concurrent morsels (pure column reads;
  // dictionary interning happens only on Append).
  void ScanMorsel(const ColumnTable& part, const ScanRequest& req,
                  const TemporalCols& tc, int64_t now, int ncols,
                  const std::vector<uint8_t>& checked,
                  const std::vector<uint8_t>& emit_col, uint64_t begin,
                  uint64_t end, const std::atomic<bool>& stop,
                  MorselOutput* out) const;

  std::unordered_map<std::string, Table> tables_;
};

}  // namespace bih

#endif  // TPCBIH_ENGINE_SYSTEM_C_H_
