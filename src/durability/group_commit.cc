#include "durability/group_commit.h"

#include <chrono>
#include <thread>
#include <utility>

namespace bih {
namespace {

// Upper bound on how long a leader waits for announced writers to finish
// staging before syncing without them. Chosen below one device sync
// (~145us here): collecting a straggler can never cost more than the
// extra sync the straggler would otherwise pay on its own.
constexpr std::chrono::microseconds kCollectDeadline{120};

}  // namespace

GroupCommit::GroupCommit(std::shared_ptr<WalWriter> wal,
                         const std::atomic<int>* staging)
    : wal_(std::move(wal)), staging_(staging) {
  wal_->SetDeferredSync(true);
}

Status GroupCommit::WaitDurable(Ticket t) {
  mu_.lock();
  while (durable_lsn_ < t.lsn) {
    if (dead_) {
      // The batch died unacknowledged; so does every transaction behind
      // it. Every queued waiter and all future tickets get the same answer.
      Status st = dead_status_;
      mu_.unlock();
      return st;
    }
    if (sync_inflight_) {
      // A leader is at the device; when it lands, durable_lsn_ jumps past
      // every ticket staged before its target. Sleep until then and
      // re-check. Waiters are never queued behind the *next* group's
      // device wait: the leader drops mu_ during the sync and durability
      // is published through the condition variable, so a covered ticket
      // acknowledges the moment its group lands even while a later group
      // is already syncing (commit pipelining on the ack side too).
      cv_.Wait(mu_);
      continue;
    }
    // Leader election: the first uncovered waiter with no sync in flight
    // leads one group for everyone queued here and everyone still staging.
    sync_inflight_ = true;
    mu_.unlock();

    // Collect phase: writers that announced themselves (entered the write
    // path, not yet appended) will stage within microseconds — wait for
    // them so this sync's target covers their tickets too, instead of each
    // paying its own sync one device-wait later. The unconditional yields
    // first bridge the instruction-scale gap between a peer acknowledging
    // the previous group and re-announcing for this one; without them the
    // leader samples the counter in exactly that blind spot and syncs
    // alone. Cost for a lone writer: two sched_yields (~1us) against a
    // device wait two orders of magnitude larger. A stuck staging writer
    // costs at most kCollectDeadline, strictly less than the sync it
    // would save.
    if (staging_ != nullptr) {
      std::this_thread::yield();
      std::this_thread::yield();
    }
    if (staging_ != nullptr &&
        staging_->load(std::memory_order_acquire) > 0) {
      const auto deadline =
          std::chrono::steady_clock::now() + kCollectDeadline;
      while (staging_->load(std::memory_order_acquire) > 0 &&
             std::chrono::steady_clock::now() < deadline) {
        std::this_thread::yield();
      }
    }

    uint64_t upto = 0;
    Status st = wal_->SyncGroup(&upto);

    mu_.lock();
    sync_inflight_ = false;
    if (!st.ok()) {
      dead_ = true;
      dead_status_ = st;
      cv_.NotifyAll();
      mu_.unlock();
      return st;
    }
    ++stats_.groups;
    if (upto > durable_lsn_) {
      const uint64_t advance = upto - durable_lsn_;
      durable_lsn_ = upto;
      if (advance > stats_.max_group) stats_.max_group = advance;
    }
    cv_.NotifyAll();
  }
  ++stats_.acks;
  mu_.unlock();
  return Status::OK();
}

uint64_t GroupCommit::durable_lsn() const {
  MutexLock lock(mu_);
  return durable_lsn_;
}

GroupCommit::Stats GroupCommit::GetStats() const {
  MutexLock lock(mu_);
  return stats_;
}

}  // namespace bih
