// Unit tests for tools/analysis/ — the tokenizer, the declaration parser,
// mutex-name resolution, lock-graph construction, and the three passes,
// all driven over in-memory sources so each case states exactly the C++
// shape it exercises.

#include <string>
#include <vector>

#include "analysis/lock_graph.h"
#include "analysis/parser.h"
#include "analysis/passes.h"
#include "analysis/source.h"
#include "gtest/gtest.h"

namespace bih {
namespace analysis {
namespace {

std::vector<std::string> SplitLines(const std::string& src) {
  std::vector<std::string> lines;
  std::string cur;
  for (char c : src) {
    if (c == '\n') {
      lines.push_back(cur);
      cur.clear();
    } else {
      cur += c;
    }
  }
  if (!cur.empty()) lines.push_back(cur);
  return lines;
}

FileText MakeText(const std::string& path, const std::string& src) {
  FileText t;
  t.path = path;
  t.raw = SplitLines(src);
  t.code = StripCommentsAndStrings(t.raw);
  return t;
}

const Finding* FindRule(const std::vector<Finding>& fs, const char* rule) {
  for (const Finding& f : fs) {
    if (f.rule == rule) return &f;
  }
  return nullptr;
}

TEST(Tokenizer, GluesScopeAndArrowAndKeepsStrings) {
  FileText t = MakeText("mem/a.cc",
                        "#include <x>\n"
                        "int a = b->c + X::y;  // comment\n"
                        "const char* s = \"Class::field\";\n");
  std::vector<Token> toks = Tokenize(t.raw);
  bool saw_arrow = false, saw_scope = false, saw_string = false;
  for (const Token& tok : toks) {
    if (tok.kind == Token::Kind::kPunct && tok.text == "->") saw_arrow = true;
    if (tok.kind == Token::Kind::kPunct && tok.text == "::") saw_scope = true;
    if (tok.kind == Token::Kind::kString) {
      saw_string = true;
      // String contents survive tokenization: annotation macros take
      // "Class::field" arguments the passes must be able to read.
      EXPECT_EQ(tok.text, "Class::field");
    }
    // The #include line is a preprocessor directive and produces nothing.
    EXPECT_NE(tok.text, "include");
    EXPECT_NE(tok.text, "comment");
  }
  EXPECT_TRUE(saw_arrow);
  EXPECT_TRUE(saw_scope);
  EXPECT_TRUE(saw_string);
}

TEST(Parser, ExtractsMutexFieldsAndAnnotations) {
  FileText t = MakeText("mem/a.h",
                        "class Store {\n"
                        " public:\n"
                        "  void Put() REQUIRES(mu_);\n"
                        " private:\n"
                        "  Mutex mu_;\n"
                        "  SharedMutex rw_mu_ ACQUIRED_AFTER(mu_)\n"
                        "      ACQUIRED_BEFORE(\"Other::log_mu_\");\n"
                        "  int rows_ GUARDED_BY(mu_) = 0;\n"
                        "  std::atomic<int> hits_{0};\n"
                        "  const int cap_ = 4;\n"
                        "};\n");
  // Named vector: the model borrows FileText pointers, so the texts must
  // outlive everything built over them.
  std::vector<FileText> texts = {t};
  RepoModel repo = ParseTree(texts);
  ASSERT_EQ(repo.classes.count("Store"), 1u);
  const ClassDecl& cls = repo.classes.at("Store");
  EXPECT_TRUE(cls.owns_mutex);
  ASSERT_EQ(cls.fields.size(), 5u);

  const FieldDecl& mu = cls.fields[0];
  EXPECT_EQ(mu.name, "mu_");
  EXPECT_TRUE(mu.is_mutex);

  const FieldDecl& rw = cls.fields[1];
  EXPECT_EQ(rw.name, "rw_mu_");
  EXPECT_TRUE(rw.is_mutex);
  ASSERT_EQ(rw.acquired_after.size(), 1u);
  EXPECT_EQ(rw.acquired_after[0], "mu_");
  ASSERT_EQ(rw.acquired_before.size(), 1u);
  EXPECT_EQ(rw.acquired_before[0], "Other::log_mu_");

  const FieldDecl& rows = cls.fields[2];
  EXPECT_EQ(rows.name, "rows_");
  ASSERT_EQ(rows.guarded_by.size(), 1u);
  EXPECT_EQ(rows.guarded_by[0], "mu_");

  EXPECT_TRUE(cls.fields[3].is_atomic);
  EXPECT_TRUE(cls.fields[4].is_const);

  const FunctionDecl* put = repo.FindAnnotations("Store::Put");
  ASSERT_NE(put, nullptr);
  ASSERT_EQ(put->requires_caps.size(), 1u);
  EXPECT_EQ(put->requires_caps[0], "mu_");
}

TEST(Parser, ReadsAnalyzeDirectivesOnDeclarations) {
  FileText t = MakeText("mem/a.h",
                        "class S {\n"
                        "  // bih-analyze: acquires(shard_mu_)\n"
                        "  void LockShards(int n) NO_THREAD_SAFETY_ANALYSIS;\n"
                        "  // bih-analyze: releases(shard_mu_)\n"
                        "  void UnlockShards(int n) NO_THREAD_SAFETY_ANALYSIS;\n"
                        "  std::vector<std::unique_ptr<Mutex>> shard_mu_;\n"
                        "};\n");
  // Named vector: the model borrows FileText pointers, so the texts must
  // outlive everything built over them.
  std::vector<FileText> texts = {t};
  RepoModel repo = ParseTree(texts);
  const FunctionDecl* lk = repo.FindAnnotations("S::LockShards");
  ASSERT_NE(lk, nullptr);
  EXPECT_TRUE(lk->no_thread_safety_analysis);
  ASSERT_EQ(lk->acquires_caps.size(), 1u);
  EXPECT_EQ(lk->acquires_caps[0], "shard_mu_");
  const FunctionDecl* ul = repo.FindAnnotations("S::UnlockShards");
  ASSERT_NE(ul, nullptr);
  ASSERT_EQ(ul->releases_caps.size(), 1u);
  EXPECT_EQ(ul->releases_caps[0], "shard_mu_");
}

TEST(Resolver, ScopedQualifiedAndAliasRules) {
  FileText t = MakeText("mem/a.h",
                        "class A {\n"
                        "  Mutex mu_;\n"
                        "  Mutex only_here_;\n"
                        "};\n"
                        "class B {\n"
                        "  Mutex mu_;\n"
                        "  Mutex& borrowed_;  // alias: not a lock identity\n"
                        "};\n");
  // Named vector: the model borrows FileText pointers, so the texts must
  // outlive everything built over them.
  std::vector<FileText> texts = {t};
  RepoModel repo = ParseTree(texts);
  LockResolver r(repo);

  // Same-class bare names win; ambiguous bare names outside a class fail.
  EXPECT_EQ(r.Resolve("mu_", "A"), "A::mu_");
  EXPECT_EQ(r.Resolve("mu_", "B"), "B::mu_");
  EXPECT_EQ(r.Resolve("mu_", ""), "");
  // A repo-unique bare name resolves from anywhere; qualified always does.
  EXPECT_EQ(r.Resolve("only_here_", "B"), "A::only_here_");
  EXPECT_EQ(r.Resolve("B::mu_", "A"), "B::mu_");
  // Reference/pointer members are views of someone else's mutex.
  EXPECT_EQ(r.AllMutexes().count("B::borrowed_"), 0u);
  EXPECT_EQ(r.Resolve("borrowed_", "B"), "");
}

TEST(LockGraph, FindsAbBaCycleWithBothWitnesses) {
  FileText t = MakeText("mem/a.cc",
                        "class P {\n"
                        " public:\n"
                        "  void AB() {\n"
                        "    MutexLock a(a_mu_);\n"
                        "    MutexLock b(b_mu_);\n"
                        "  }\n"
                        "  void BA() {\n"
                        "    MutexLock b(b_mu_);\n"
                        "    MutexLock a(a_mu_);\n"
                        "  }\n"
                        " private:\n"
                        "  Mutex a_mu_;\n"
                        "  Mutex b_mu_;\n"
                        "};\n");
  // Named vector: the model borrows FileText pointers, so the texts must
  // outlive everything built over them.
  std::vector<FileText> texts = {t};
  RepoModel repo = ParseTree(texts);
  LockResolver r(repo);
  LockGraph g = BuildLockGraph(repo, r);
  ASSERT_EQ(g.cycles.size(), 1u);
  const LockGraph::Cycle& c = g.cycles[0];
  ASSERT_EQ(c.edges.size(), 2u);
  std::string funcs;
  for (const LockEdge* e : c.edges) {
    ASSERT_FALSE(e->witnesses.empty());
    funcs += e->witnesses.front().func + ";";
  }
  EXPECT_NE(funcs.find("P::AB"), std::string::npos);
  EXPECT_NE(funcs.find("P::BA"), std::string::npos);
}

TEST(LockGraph, PropagatesAcquisitionsThroughCalls) {
  FileText t = MakeText("mem/a.cc",
                        "class S {\n"
                        " public:\n"
                        "  void Outer() {\n"
                        "    MutexLock l(outer_mu_);\n"
                        "    Inner();\n"
                        "  }\n"
                        "  void Inner() { MutexLock l(inner_mu_); }\n"
                        " private:\n"
                        "  Mutex outer_mu_;\n"
                        "  Mutex inner_mu_;\n"
                        "};\n");
  // Named vector: the model borrows FileText pointers, so the texts must
  // outlive everything built over them.
  std::vector<FileText> texts = {t};
  RepoModel repo = ParseTree(texts);
  LockResolver r(repo);
  LockGraph g = BuildLockGraph(repo, r);
  auto it = g.edges.find({"S::outer_mu_", "S::inner_mu_"});
  ASSERT_NE(it, g.edges.end());
  ASSERT_FALSE(it->second.witnesses.empty());
  EXPECT_EQ(it->second.witnesses.front().func, "S::Outer");
  EXPECT_NE(it->second.witnesses.front().chain.find("S::Inner"),
            std::string::npos);
}

TEST(Passes, DeclaredOrderSilencesObservedNesting) {
  FileText t = MakeText("mem/a.cc",
                        "class P {\n"
                        " public:\n"
                        "  void AB() {\n"
                        "    MutexLock a(a_mu_);\n"
                        "    MutexLock b(b_mu_);\n"
                        "  }\n"
                        " private:\n"
                        "  Mutex a_mu_;\n"
                        "  Mutex b_mu_ ACQUIRED_AFTER(a_mu_);\n"
                        "};\n");
  AnalyzeResult res = Analyze({t}, AnalyzeOptions{});
  EXPECT_EQ(FindRule(res.findings, "lock-order"), nullptr);
}

TEST(Passes, GuardCoverageFlagsAndHonoursSuppression) {
  FileText bad = MakeText("mem/bad.h",
                          "class R {\n"
                          "  Mutex mu_;\n"
                          "  int naked_;\n"
                          "};\n");
  AnalyzeResult res = Analyze({bad}, AnalyzeOptions{});
  const Finding* f = FindRule(res.findings, "guard-coverage");
  ASSERT_NE(f, nullptr);
  EXPECT_NE(f->message.find("naked_"), std::string::npos);

  FileText ok = MakeText("mem/ok.h",
                         "class R {\n"
                         "  Mutex mu_;\n"
                         "  int waived_;  // bih-lint: allow(guard-coverage)\n"
                         "};\n");
  AnalyzeResult res2 = Analyze({ok}, AnalyzeOptions{});
  EXPECT_EQ(FindRule(res2.findings, "guard-coverage"), nullptr);
}

TEST(Passes, BlockingUnderConfiguredMutexButNotAfterRelease) {
  const char* src =
      "class W {\n"
      " public:\n"
      "  void Bad() {\n"
      "    MutexLock l(mu_);\n"
      "    fdatasync(3);\n"
      "  }\n"
      "  void Good() {\n"
      "    { MutexLock l(mu_); }\n"
      "    fdatasync(3);\n"
      "  }\n"
      "  void Waits() {\n"
      "    MutexLock l(mu_);\n"
      "    cv_.Wait(mu_);\n"
      "  }\n"
      " private:\n"
      "  Mutex mu_;\n"
      "  CondVar cv_;\n"
      "};\n";
  AnalyzeOptions opts;
  opts.no_block.push_back("W::mu_");
  AnalyzeResult res = Analyze({MakeText("mem/w.cc", src)}, opts);
  const Finding* f = FindRule(res.findings, "blocking-under-lock");
  ASSERT_NE(f, nullptr);
  // Exactly one site fires: Bad's sync under the lock. Good released the
  // scope first and a CV wait releases the mutex it is handed.
  size_t count = 0;
  for (const Finding& x : res.findings) {
    if (x.rule == "blocking-under-lock") ++count;
  }
  EXPECT_EQ(count, 1u);
  EXPECT_EQ(f->line, 5u);
}

TEST(Passes, TryLockRetryLoopIsNotHeld) {
  // The negated try_lock in the retry loop must not count as held while
  // the loop body sleeps — the acquisition only exists on the success
  // path, after the loop exits.
  const char* src =
      "class S {\n"
      " public:\n"
      "  void Poll() {\n"
      "    while (!mu_.try_lock()) {\n"
      "      usleep(100);\n"
      "    }\n"
      "    mu_.unlock();\n"
      "  }\n"
      " private:\n"
      "  Mutex mu_;\n"
      "};\n";
  AnalyzeOptions opts;
  opts.no_block.push_back("S::mu_");
  AnalyzeResult res = Analyze({MakeText("mem/s.cc", src)}, opts);
  EXPECT_EQ(FindRule(res.findings, "blocking-under-lock"), nullptr);
}

}  // namespace
}  // namespace analysis
}  // namespace bih
