// Differential crash-recovery sweep (the headline durability property).
//
// A deterministic fuzz-style operation sequence is driven through a
// WAL-attached engine with a fault injected at every k-th physical log
// write — clean write failures and torn mid-record tails both. After the
// "crash" the log is recovered into a fresh engine, which must reproduce
// EXACTLY the reference model's state at the last durable commit: same
// versions, same application periods, same system-time coordinates. Runs
// against all four architectures.
#include <algorithm>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "durability/group_commit.h"
#include "engine/recovery.h"
#include "temporal/clock.h"

namespace bih {
namespace {

TableDef ItemDef() {
  TableDef def;
  def.name = "ITEM";
  def.schema = Schema({{"ID", ColumnType::kInt},
                       {"PRICE", ColumnType::kDouble},
                       {"NOTE", ColumnType::kString},
                       {"VB", ColumnType::kDate},
                       {"VE", ColumnType::kDate}});
  def.primary_key = {0};
  def.app_periods = {{"VALIDITY", 3, 4}};
  def.system_versioned = true;
  return def;
}

// One engine-neutral step of the driven sequence (a tiny Operation clone,
// kept local so the sweep is self-contained).
struct Step {
  enum class Kind {
    kInsert,
    kUpdateCurrent,
    kUpdateSequenced,
    kUpdateOverwrite,
    kDeleteCurrent,
    kDeleteSequenced,
  };
  Kind kind;
  Row row;
  int64_t id = 0;
  Period window;
  std::vector<ColumnAssignment> set;
};

// Deterministic operation sequence; the same recipe as engine_fuzz_test.
// Updates/deletes only target keys inserted in an earlier batch of
// `batch_size` steps and not yet mutated in the current one: two
// mutations of a key at the same commit timestamp create empty system
// intervals, which the reference model does not define (the benchmark
// history never does this either).
std::vector<Step> MakeSteps(uint64_t seed, int n, size_t batch_size = 1) {
  Rng rng(seed);
  std::vector<Step> steps;
  std::vector<int64_t> keys;     // eligible: committed in an earlier batch
  std::vector<int64_t> pending;  // inserted in the current batch
  std::vector<int64_t> touched;  // mutated in the current batch
  int64_t next_key = 1;
  for (int i = 0; i < n; ++i) {
    if (i % static_cast<int>(batch_size) == 0) {
      keys.insert(keys.end(), pending.begin(), pending.end());
      pending.clear();
      touched.clear();
    }
    std::vector<int64_t> avail;
    for (int64_t k : keys) {
      if (std::find(touched.begin(), touched.end(), k) == touched.end()) {
        avail.push_back(k);
      }
    }
    int choice = static_cast<int>(rng.UniformInt(0, 9));
    Step s;
    if (choice <= 3 || avail.empty()) {
      int64_t id = next_key++;
      int64_t vb = rng.UniformInt(0, 300);
      int64_t ve =
          rng.Bernoulli(0.3) ? Period::kForever : vb + rng.UniformInt(1, 200);
      s.kind = Step::Kind::kInsert;
      s.row = Row{Value(id), Value(double(rng.UniformInt(1, 1000))),
                  Value(rng.Bernoulli(0.5) ? "x" : "y"), Value(vb), Value(ve)};
      pending.push_back(id);
    } else {
      s.id = avail[static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(avail.size()) - 1))];
      touched.push_back(s.id);
      s.set = {{1, Value(double(rng.UniformInt(1, 1000)))}};
      int64_t wb = rng.UniformInt(0, 400);
      s.window = Period(wb, rng.Bernoulli(0.3) ? Period::kForever
                                               : wb + rng.UniformInt(1, 150));
      switch (choice) {
        case 4:
        case 5:
          s.kind = Step::Kind::kUpdateCurrent;
          break;
        case 6:
          s.kind = Step::Kind::kUpdateSequenced;
          break;
        case 7:
          s.kind = Step::Kind::kUpdateOverwrite;
          break;
        case 8:
          s.kind = Step::Kind::kDeleteSequenced;
          s.set.clear();
          break;
        default:
          s.kind = Step::Kind::kDeleteCurrent;
          break;
      }
    }
    steps.push_back(std::move(s));
  }
  return steps;
}

Status ApplyStep(TemporalEngine& e, const Step& s) {
  switch (s.kind) {
    case Step::Kind::kInsert:
      return e.Insert("ITEM", s.row);
    case Step::Kind::kUpdateCurrent:
      return e.UpdateCurrent("ITEM", {Value(s.id)}, s.set);
    case Step::Kind::kUpdateSequenced:
      return e.UpdateSequenced("ITEM", {Value(s.id)}, 0, s.window, s.set);
    case Step::Kind::kUpdateOverwrite:
      return e.UpdateOverwrite("ITEM", {Value(s.id)}, 0, s.window, s.set);
    case Step::Kind::kDeleteCurrent:
      return e.DeleteCurrent("ITEM", {Value(s.id)});
    case Step::Kind::kDeleteSequenced:
      return e.DeleteSequenced("ITEM", {Value(s.id)}, 0, s.window);
  }
  return Status::Internal("unreachable");
}

// Reference model: every version ever created, with explicit system time.
// (Same shape as the engine_fuzz_test model, reduced to what the sweep
// needs: full-history dumps.)
class Model {
 public:
  void Apply(const Step& s, int64_t ts) {
    switch (s.kind) {
      case Step::Kind::kInsert:
        versions_.push_back({s.row, ts, Period::kForever});
        return;
      case Step::Kind::kUpdateCurrent: {
        for (size_t i : CurrentOf(s.id)) {
          Row next = versions_[i].row;
          for (const ColumnAssignment& a : s.set) {
            next[static_cast<size_t>(a.column)] = a.value;
          }
          versions_[i].sys_to = ts;
          versions_.push_back({std::move(next), ts, Period::kForever});
        }
        return;
      }
      case Step::Kind::kDeleteCurrent:
        for (size_t i : CurrentOf(s.id)) versions_[i].sys_to = ts;
        return;
      default: {
        std::vector<size_t> cur = CurrentOf(s.id);
        std::vector<Row> rows;
        for (size_t i : cur) rows.push_back(versions_[i].row);
        SequencedOps ops;
        if (s.kind == Step::Kind::kUpdateSequenced) {
          ops = PlanSequencedUpdate(rows, 3, 4, s.window, s.set);
        } else if (s.kind == Step::Kind::kDeleteSequenced) {
          ops = PlanSequencedDelete(rows, 3, 4, s.window);
        } else {
          ops = PlanOverwriteUpdate(rows, 3, 4, s.window, s.set);
        }
        for (size_t vi : ops.to_close) versions_[cur[vi]].sys_to = ts;
        for (Row& r : ops.to_insert) {
          versions_.push_back({std::move(r), ts, Period::kForever});
        }
        return;
      }
    }
  }

  bool WouldSucceed(const Step& s) const {
    return s.kind == Step::Kind::kInsert || !CurrentOf(s.id).empty();
  }

  // Full-history dump in scan-schema order (user cols + system interval).
  std::vector<Row> Dump() const {
    std::vector<Row> out;
    for (const ModelVersion& v : versions_) {
      Row r = v.row;
      r.push_back(Value(v.sys_from));
      r.push_back(Value(v.sys_to));
      out.push_back(std::move(r));
    }
    return out;
  }

 private:
  struct ModelVersion {
    Row row;
    int64_t sys_from;
    int64_t sys_to;
  };

  std::vector<size_t> CurrentOf(int64_t id) const {
    std::vector<size_t> out;
    for (size_t i = 0; i < versions_.size(); ++i) {
      if (versions_[i].sys_to == Period::kForever &&
          versions_[i].row[0].AsInt() == id) {
        out.push_back(i);
      }
    }
    return out;
  }

  std::vector<ModelVersion> versions_;
};

std::vector<Row> Canonical(std::vector<Row> rows) {
  std::sort(rows.begin(), rows.end(), [](const Row& a, const Row& b) {
    for (size_t i = 0; i < a.size(); ++i) {
      int c = a[i].Compare(b[i]);
      if (c != 0) return c < 0;
    }
    return false;
  });
  return rows;
}

std::vector<Row> DumpEngine(TemporalEngine& e) {
  ScanRequest req;
  req.table = "ITEM";
  req.temporal.system_time = TemporalSelector::All();
  req.temporal.app_time = TemporalSelector::All();
  std::vector<Row> rows;
  e.Scan(req, [&](const Row& r) {
    rows.push_back(r);
    return true;
  });
  return rows;
}

void ExpectSameRows(const std::vector<Row>& expect, const std::vector<Row>& got,
                    const std::string& what) {
  ASSERT_EQ(expect.size(), got.size()) << what;
  for (size_t i = 0; i < expect.size(); ++i) {
    ASSERT_EQ(expect[i].size(), got[i].size()) << what << " row " << i;
    for (size_t c = 0; c < expect[i].size(); ++c) {
      ASSERT_EQ(0, expect[i][c].Compare(got[i][c]))
          << what << " row " << i << " col " << c;
    }
  }
}

std::string TmpWal(const std::string& tag) {
  return ::testing::TempDir() + "/crash_" + tag + ".wal";
}

class CrashSweepTest : public ::testing::TestWithParam<std::string> {};

// Auto-commit mode: every op record is its own durable point, so a crash
// at log write n leaves exactly the first n-1 records (1 DDL + n-2 ops)
// durable. Fault flavours alternate between clean write failures and torn
// tails of varying length as the sweep advances.
TEST_P(CrashSweepTest, RecoveryMatchesModelAtEveryCrashPoint) {
  const std::string letter = GetParam();
  const uint64_t kSeed = 20260805;
  const int kSteps = 120;
  const int kStride = 5;  // crash after every 5th WAL write
  std::vector<Step> steps = MakeSteps(kSeed, kSteps);

  // Reference run (no faults) to learn the log length in records.
  uint64_t total_writes;
  {
    auto engine = MakeEngine(letter);
    ASSERT_TRUE(engine->EnableWal(TmpWal(letter + "_ref")).ok());
    ASSERT_TRUE(engine->CreateTable(ItemDef()).ok());
    for (const Step& s : steps) {
      Status st = ApplyStep(*engine, s);
      ASSERT_TRUE(st.ok() || st.code() == Status::Code::kNotFound);
    }
    total_writes = engine->wal()->records_written();
  }
  ASSERT_GT(total_writes, 10u);

  for (uint64_t crash = 2; crash <= total_writes; crash += kStride) {
    // Alternate fault flavour along the sweep; torn lengths cycle through
    // 0 (nothing persisted) .. 14 bytes of the failing frame — always less
    // than the smallest frame, so the torn record never survives whole.
    const bool torn = crash % 2 == 0;
    const size_t keep = static_cast<size_t>((crash / 2) % 15);
    FaultInjector fi = torn ? FaultInjector::TornNth(crash, keep)
                            : FaultInjector::FailNth(crash);
    const std::string wal_path = TmpWal(letter + "_" + std::to_string(crash));
    auto engine = MakeEngine(letter);
    ASSERT_TRUE(engine->EnableWal(wal_path, &fi).ok());
    ASSERT_TRUE(engine->CreateTable(ItemDef()).ok());

    // Drive until the injected crash; build the model only from mutations
    // that became durable (the clock ticks for every attempt, mirroring
    // the engine's wrapper, so timestamps stay aligned).
    Model model;
    CommitClock model_clock;
    bool crashed = false;
    for (const Step& s : steps) {
      int64_t ts = model_clock.NextCommit().micros();
      Status st = ApplyStep(*engine, s);
      if (st.code() == Status::Code::kIoError) {
        crashed = true;
        break;
      }
      if (st.ok()) {
        model.Apply(s, ts);
      } else {
        ASSERT_EQ(Status::Code::kNotFound, st.code())
            << letter << " crash=" << crash;
        ASSERT_FALSE(model.WouldSucceed(s));
      }
    }
    ASSERT_TRUE(crashed) << letter << " crash=" << crash;

    std::unique_ptr<TemporalEngine> recovered;
    RecoveryReport report;
    Status st = RecoverEngine(letter, wal_path, &recovered, &report);
    ASSERT_TRUE(st.ok()) << st.ToString() << " " << letter
                         << " crash=" << crash;
    // A torn frame leaves garbage bytes behind the salvage point; a clean
    // write failure leaves nothing. Either way every full record survives.
    EXPECT_EQ(crash - 1, report.records_total) << report.ToString();
    EXPECT_EQ(torn && keep > 0, report.tail_dropped) << report.ToString();
    EXPECT_GE(report.bytes_total, report.bytes_salvaged);

    ExpectSameRows(Canonical(model.Dump()),
                   Canonical(DumpEngine(*recovered)),
                   letter + " crash=" + std::to_string(crash));
  }
}

// Batched mode: ops between Begin/Commit share one commit stamp and are
// durable only when the commit marker lands. A crash anywhere in the batch
// flush must roll the whole batch back to the previous commit point.
TEST_P(CrashSweepTest, UncommittedBatchRollsBackAtEveryCrashPoint) {
  const std::string letter = GetParam();
  const uint64_t kSeed = 77;
  const int kSteps = 90;
  const size_t kBatch = 4;
  std::vector<Step> steps = MakeSteps(kSeed, kSteps, kBatch);

  uint64_t total_writes;
  {
    auto engine = MakeEngine(letter);
    ASSERT_TRUE(engine->EnableWal(TmpWal(letter + "_bref")).ok());
    ASSERT_TRUE(engine->CreateTable(ItemDef()).ok());
    for (size_t i = 0; i < steps.size(); i += kBatch) {
      engine->Begin();
      for (size_t j = i; j < std::min(steps.size(), i + kBatch); ++j) {
        Status st = ApplyStep(*engine, steps[j]);
        ASSERT_TRUE(st.ok() || st.code() == Status::Code::kNotFound);
      }
      ASSERT_TRUE(engine->Commit().ok());
    }
    total_writes = engine->wal()->records_written();
  }

  for (uint64_t crash = 2; crash <= total_writes; crash += 7) {
    FaultInjector fi = crash % 2 == 0
                           ? FaultInjector::TornNth(crash, (crash * 5) % 11)
                           : FaultInjector::FailNth(crash);
    const std::string wal_path = TmpWal(letter + "_b" + std::to_string(crash));
    auto engine = MakeEngine(letter);
    ASSERT_TRUE(engine->EnableWal(wal_path, &fi).ok());
    ASSERT_TRUE(engine->CreateTable(ItemDef()).ok());

    Model model;
    CommitClock model_clock;
    bool crashed = false;
    for (size_t i = 0; i < steps.size() && !crashed; i += kBatch) {
      int64_t ts = model_clock.NextCommit().micros();
      engine->Begin();
      std::vector<const Step*> applied;
      for (size_t j = i; j < std::min(steps.size(), i + kBatch); ++j) {
        Status st = ApplyStep(*engine, steps[j]);
        if (st.ok()) applied.push_back(&steps[j]);
      }
      Status st = engine->Commit();
      if (st.code() == Status::Code::kIoError) {
        crashed = true;  // whole batch lost
      } else {
        ASSERT_TRUE(st.ok());
        for (const Step* s : applied) model.Apply(*s, ts);
      }
    }
    ASSERT_TRUE(crashed) << letter << " crash=" << crash;

    std::unique_ptr<TemporalEngine> recovered;
    RecoveryReport report;
    Status st = RecoverEngine(letter, wal_path, &recovered, &report);
    ASSERT_TRUE(st.ok()) << st.ToString();
    ExpectSameRows(Canonical(model.Dump()),
                   Canonical(DumpEngine(*recovered)),
                   letter + " batch crash=" + std::to_string(crash));
  }
}

// Group-boundary regression: transactions staged in deferred-sync mode
// across one shared group flush and across a segment rotation must replay
// with byte-identical state — including identical commit timestamps, which
// the full-history dump carries in its system-time columns. This is the
// recovery contract the group-commit write path leans on: deferring the
// fdatasync reorders *when* records become durable, never *what* they say.
TEST_P(CrashSweepTest, GroupBoundaryStagingRecoversIdenticalTimestamps) {
  const std::string letter = GetParam();
  const std::string wal_path = TmpWal(letter + "_group");
  const size_t kBatch = 4;
  std::vector<Step> steps = MakeSteps(131, 16, kBatch);

  Model model;
  CommitClock model_clock;
  {
    auto engine = MakeEngine(letter);
    ASSERT_TRUE(engine->EnableWal(wal_path).ok());
    ASSERT_TRUE(engine->CreateTable(ItemDef()).ok());
    // Deferred-sync mode from here on: Commit stages, the coordinator is
    // the only durability point.
    GroupCommit group(engine->SharedWal());

    auto run_batch = [&](size_t i) {
      const int64_t ts = model_clock.NextCommit().micros();
      engine->Begin();
      std::vector<const Step*> applied;
      for (size_t j = i; j < std::min(steps.size(), i + kBatch); ++j) {
        Status st = ApplyStep(*engine, steps[j]);
        if (st.ok()) applied.push_back(&steps[j]);
      }
      ASSERT_TRUE(engine->Commit().ok());
      for (const Step* s : applied) model.Apply(*s, ts);
    };

    // Batches 1 and 2 stage unsynced; one WaitDurable covers both in a
    // single device sync (the group flush under test).
    run_batch(0);
    run_batch(kBatch);
    const uint64_t syncs_before = engine->wal()->syncs();
    GroupCommit::Ticket two_batches{engine->wal()->appended_lsn()};
    ASSERT_TRUE(group.WaitDurable(two_batches).ok());
    EXPECT_EQ(syncs_before + 1, engine->wal()->syncs())
        << "two staged transactions should share one fdatasync";
    EXPECT_EQ(1u, group.GetStats().groups);

    // Batch 3 stages in segment 1, then the segment rotates mid-stream
    // (the rotation itself syncs the staged tail); batch 4 lands in
    // segment 2 and is flushed by its own group.
    run_batch(2 * kBatch);
    ASSERT_TRUE(engine->wal()->Rotate().ok());
    EXPECT_EQ(2u, engine->wal()->segment_index());
    run_batch(3 * kBatch);
    ASSERT_TRUE(
        group.WaitDurable({engine->wal()->appended_lsn()}).ok());
  }

  std::unique_ptr<TemporalEngine> recovered;
  RecoveryReport report;
  ASSERT_TRUE(RecoverEngine(letter, wal_path, &recovered, &report).ok());
  EXPECT_EQ(2u, report.segments_scanned) << report.ToString();
  EXPECT_FALSE(report.tail_dropped) << report.ToString();
  ExpectSameRows(Canonical(model.Dump()), Canonical(DumpEngine(*recovered)),
                 letter + " group boundary");
}

INSTANTIATE_TEST_SUITE_P(AllEngines, CrashSweepTest,
                         ::testing::Values("A", "B", "C", "D"));

}  // namespace
}  // namespace bih
