#include "sql/executor.h"

#include <algorithm>
#include <cctype>
#include <set>
#include <utility>

#include "exec/optimizer.h"
#include "sql/parser.h"
#include "storage/btree_index.h"

namespace bih {
namespace sql {

namespace {

// Name scope of the rows flowing between operators: one entry per column.
struct ScopeColumn {
  std::string qualifier;  // table alias
  std::string name;
};

class Binder {
 public:
  explicit Binder(const std::vector<ScopeColumn>* scope) : scope_(scope) {}

  // Resolves a column reference to a position.
  Status ResolveColumn(const SqlExpr& e, int* out) const {
    int found = -1;
    for (size_t i = 0; i < scope_->size(); ++i) {
      const ScopeColumn& c = (*scope_)[i];
      if (c.name != e.name) continue;
      if (!e.qualifier.empty() && c.qualifier != e.qualifier) continue;
      if (found >= 0) {
        return Status::InvalidArgument("ambiguous column '" + e.name + "'");
      }
      found = static_cast<int>(i);
    }
    if (found < 0) {
      return Status::InvalidArgument(
          "unknown column '" +
          (e.qualifier.empty() ? e.name : e.qualifier + "." + e.name) + "'");
    }
    *out = found;
    return Status::OK();
  }

  // Binds a scalar expression (no aggregates allowed).
  Status Bind(const SqlExprPtr& e, ExprPtr* out) const {
    switch (e->kind) {
      case SqlExpr::Kind::kColumn: {
        int pos;
        BIH_RETURN_IF_ERROR(ResolveColumn(*e, &pos));
        *out = Col(pos);
        return Status::OK();
      }
      case SqlExpr::Kind::kLiteral:
        *out = Lit(e->literal);
        return Status::OK();
      case SqlExpr::Kind::kUnary: {
        ExprPtr inner;
        BIH_RETURN_IF_ERROR(Bind(e->children[0], &inner));
        *out = Not(inner);
        return Status::OK();
      }
      case SqlExpr::Kind::kBetween: {
        ExprPtr x, lo, hi;
        BIH_RETURN_IF_ERROR(Bind(e->children[0], &x));
        BIH_RETURN_IF_ERROR(Bind(e->children[1], &lo));
        BIH_RETURN_IF_ERROR(Bind(e->children[2], &hi));
        *out = Between(x, lo, hi);
        return Status::OK();
      }
      case SqlExpr::Kind::kLike: {
        ExprPtr s;
        BIH_RETURN_IF_ERROR(Bind(e->children[0], &s));
        const std::string& pattern = e->op;
        bool leading = !pattern.empty() && pattern.front() == '%';
        bool trailing = !pattern.empty() && pattern.back() == '%';
        std::string core = pattern.substr(
            leading ? 1 : 0,
            pattern.size() - (leading ? 1 : 0) - (trailing ? 1 : 0));
        if (core.find('%') != std::string::npos ||
            core.find('_') != std::string::npos) {
          return Status::Unimplemented(
              "LIKE supports only leading/trailing %% wildcards");
        }
        if (leading && trailing) {
          *out = Contains(s, Lit(Value(core)));
        } else if (trailing) {
          *out = StartsWith(s, Lit(Value(core)));
        } else if (leading) {
          // suffix match: contains + cheap approximation is wrong; use
          // equality of the trailing part via Contains as a documented
          // simplification would be unsound — implement via Contains plus
          // length is not expressible, so reject.
          return Status::Unimplemented("LIKE '%x' (suffix) is not supported");
        } else {
          *out = Eq(s, Lit(Value(core)));
        }
        return Status::OK();
      }
      case SqlExpr::Kind::kBinary: {
        ExprPtr a, b;
        BIH_RETURN_IF_ERROR(Bind(e->children[0], &a));
        BIH_RETURN_IF_ERROR(Bind(e->children[1], &b));
        const std::string& op = e->op;
        if (op == "+") *out = Add(a, b);
        else if (op == "-") *out = Sub(a, b);
        else if (op == "*") *out = Mul(a, b);
        else if (op == "/") *out = Div(a, b);
        else if (op == "=") *out = Eq(a, b);
        else if (op == "<>") *out = Ne(a, b);
        else if (op == "<") *out = Lt(a, b);
        else if (op == "<=") *out = Le(a, b);
        else if (op == ">") *out = Gt(a, b);
        else if (op == ">=") *out = Ge(a, b);
        else if (op == "AND") *out = And(a, b);
        else if (op == "OR") *out = Or(a, b);
        else return Status::Internal("unknown operator " + op);
        return Status::OK();
      }
      case SqlExpr::Kind::kAggregate:
        return Status::InvalidArgument(
            "aggregate not allowed in this context");
      case SqlExpr::Kind::kStar:
        return Status::InvalidArgument("'*' not allowed in this context");
    }
    return Status::Internal("unreachable");
  }

 private:
  const std::vector<ScopeColumn>* scope_;
};

bool ContainsAggregate(const SqlExprPtr& e) {
  if (e == nullptr) return false;
  if (e->kind == SqlExpr::Kind::kAggregate) return true;
  for (const SqlExprPtr& c : e->children) {
    if (ContainsAggregate(c)) return true;
  }
  return false;
}

std::string DeriveName(const SelectItem& item, size_t index) {
  if (!item.alias.empty()) return item.alias;
  if (item.expr->kind == SqlExpr::Kind::kColumn) return item.expr->name;
  if (item.expr->kind == SqlExpr::Kind::kAggregate) return item.expr->func;
  return "EXPR" + std::to_string(index + 1);
}

// Extracts equi-join keys from the conjunctive ON condition: conditions of
// the form left_col = right_col become hash keys; everything else stays a
// residual predicate over the joined row.
void SplitJoinCondition(const SqlExprPtr& e, const Binder& left_binder,
                        const Binder& right_binder, size_t left_width,
                        std::vector<int>* left_keys,
                        std::vector<int>* right_keys,
                        std::vector<SqlExprPtr>* residual) {
  if (e->kind == SqlExpr::Kind::kBinary && e->op == "AND") {
    SplitJoinCondition(e->children[0], left_binder, right_binder, left_width,
                       left_keys, right_keys, residual);
    SplitJoinCondition(e->children[1], left_binder, right_binder, left_width,
                       left_keys, right_keys, residual);
    return;
  }
  if (e->kind == SqlExpr::Kind::kBinary && e->op == "=" &&
      e->children[0]->kind == SqlExpr::Kind::kColumn &&
      e->children[1]->kind == SqlExpr::Kind::kColumn) {
    int l, r;
    if (left_binder.ResolveColumn(*e->children[0], &l).ok() &&
        right_binder.ResolveColumn(*e->children[1], &r).ok()) {
      left_keys->push_back(l);
      right_keys->push_back(r);
      return;
    }
    if (left_binder.ResolveColumn(*e->children[1], &l).ok() &&
        right_binder.ResolveColumn(*e->children[0], &r).ok()) {
      left_keys->push_back(l);
      right_keys->push_back(r);
      return;
    }
  }
  (void)left_width;
  residual->push_back(e);
}

// Lowers one table reference into a Scan leaf. Pure planning: only schema
// lookups, no engine access — the scan runs when the tree executes.
Status PlanTable(TemporalEngine& engine, const TableRef& ref, PlanPtr* plan,
                 std::vector<ScopeColumn>* scope) {
  if (!engine.HasTable(ref.table)) {
    return Status::NotFound("no table named " + ref.table);
  }
  const TableDef* def = &engine.GetTableDef(ref.table);
  TemporalScanSpec spec;
  spec.system_time = ref.system_time;
  spec.app_time = ref.app_time;
  if (!ref.app_period.empty()) {
    int idx = def->FindAppPeriod(ref.app_period);
    if (idx < 0) {
      return Status::InvalidArgument("table " + ref.table +
                                     " has no period named " + ref.app_period);
    }
    spec.app_period_index = idx;
  }
  if (ref.has_app_clause && def->app_periods.empty()) {
    return Status::InvalidArgument("table " + ref.table +
                                   " has no application-time period");
  }
  ScanRequest req;
  req.table = ref.table;
  req.temporal = spec;
  *plan = ScanPlan(std::move(req));
  Schema schema = engine.ScanSchema(ref.table);
  for (const Column& c : schema.columns()) {
    scope->push_back(ScopeColumn{ref.alias, c.name});
  }
  return Status::OK();
}

}  // namespace

Status PlanSelect(TemporalEngine& engine, const SelectStatement& stmt,
                  PlanPtr* out_plan, std::vector<std::string>* columns) {
  // FROM + JOIN pipeline.
  std::vector<ScopeColumn> scope;
  PlanPtr plan;
  BIH_RETURN_IF_ERROR(PlanTable(engine, stmt.from, &plan, &scope));
  for (const Join& join : stmt.joins) {
    std::vector<ScopeColumn> right_scope;
    PlanPtr right;
    BIH_RETURN_IF_ERROR(PlanTable(engine, join.table, &right, &right_scope));
    Binder left_binder(&scope);
    Binder right_binder(&right_scope);
    std::vector<int> lk, rk;
    std::vector<SqlExprPtr> residual_parts;
    SplitJoinCondition(join.on, left_binder, right_binder, scope.size(), &lk,
                       &rk, &residual_parts);
    // Combined scope for the residual predicate.
    std::vector<ScopeColumn> combined = scope;
    combined.insert(combined.end(), right_scope.begin(), right_scope.end());
    ExprPtr residual = nullptr;
    Binder combined_binder(&combined);
    for (const SqlExprPtr& part : residual_parts) {
      ExprPtr bound;
      BIH_RETURN_IF_ERROR(combined_binder.Bind(part, &bound));
      residual = residual == nullptr ? bound : And(residual, bound);
    }
    if (lk.empty()) {
      // Pure cross/theta join: nested loops with the residual on top.
      plan = CrossJoinPlan(std::move(plan), std::move(right), residual);
    } else {
      plan = HashJoinPlan(std::move(plan), std::move(right), lk, rk,
                          right_scope.size(), JoinType::kInner, residual);
    }
    scope = std::move(combined);
  }

  Binder binder(&scope);
  if (stmt.where != nullptr) {
    if (ContainsAggregate(stmt.where)) {
      return Status::InvalidArgument("aggregates are not allowed in WHERE");
    }
    ExprPtr pred;
    BIH_RETURN_IF_ERROR(binder.Bind(stmt.where, &pred));
    plan = FilterPlan(std::move(plan), pred);
  }

  const bool aggregating =
      !stmt.group_by.empty() || stmt.having != nullptr ||
      std::any_of(stmt.items.begin(), stmt.items.end(),
                  [](const SelectItem& i) { return ContainsAggregate(i.expr); });

  if (!aggregating) {
    // ORDER BY evaluates over the pre-projection row (SQL also allows
    // output aliases; support those by substituting the item expression).
    if (!stmt.order_by.empty()) {
      std::vector<SortSpec> keys;
      for (const OrderItem& item : stmt.order_by) {
        SqlExprPtr target = item.expr;
        if (target->kind == SqlExpr::Kind::kColumn && target->qualifier.empty()) {
          for (const SelectItem& si : stmt.items) {
            if (!si.alias.empty() && si.alias == target->name) {
              target = si.expr;
              break;
            }
          }
        }
        ExprPtr bound;
        BIH_RETURN_IF_ERROR(binder.Bind(target, &bound));
        keys.push_back(SortSpec{bound, item.ascending});
      }
      plan = SortPlan(std::move(plan), std::move(keys));
    }
    if (stmt.limit >= 0) {
      plan = LimitPlan(std::move(plan), static_cast<size_t>(stmt.limit));
    }
    columns->clear();
    if (stmt.select_star) {
      for (const ScopeColumn& c : scope) columns->push_back(c.name);
    } else {
      std::vector<ExprPtr> exprs;
      for (size_t i = 0; i < stmt.items.size(); ++i) {
        ExprPtr e;
        BIH_RETURN_IF_ERROR(binder.Bind(stmt.items[i].expr, &e));
        exprs.push_back(e);
        columns->push_back(DeriveName(stmt.items[i], i));
      }
      plan = ProjectPlan(std::move(plan), std::move(exprs));
    }
    // DISTINCT applies to the final projected rows, after LIMIT — matching
    // the operator order this executor has always used.
    if (stmt.distinct) plan = DistinctPlan(std::move(plan));
    *out_plan = std::move(plan);
    return Status::OK();
  }

  // --- aggregation -------------------------------------------------------
  if (stmt.select_star) {
    return Status::InvalidArgument("SELECT * cannot be combined with GROUP BY");
  }
  // Group columns must be plain column references.
  std::vector<int> group_cols;
  for (const SqlExprPtr& g : stmt.group_by) {
    if (g->kind != SqlExpr::Kind::kColumn) {
      return Status::Unimplemented("GROUP BY supports only column references");
    }
    int pos;
    BIH_RETURN_IF_ERROR(binder.ResolveColumn(*g, &pos));
    group_cols.push_back(pos);
  }
  // Collect aggregate calls from the select list and HAVING, dedup by
  // (func, bound expr is not comparable) — we simply register each call.
  struct AggRef {
    const SqlExpr* call;
    size_t output_pos;
  };
  std::vector<AggSpec> specs;
  std::vector<AggRef> agg_refs;
  auto register_aggregates = [&](const SqlExprPtr& root,
                                 auto&& self) -> Status {
    if (root == nullptr) return Status::OK();
    if (root->kind == SqlExpr::Kind::kAggregate) {
      AggSpec spec;
      if (root->children[0]->kind == SqlExpr::Kind::kStar) {
        spec.kind = AggKind::kCount;
        spec.expr = nullptr;
      } else {
        ExprPtr arg;
        BIH_RETURN_IF_ERROR(binder.Bind(root->children[0], &arg));
        if (root->func == "SUM") spec.kind = AggKind::kSum;
        else if (root->func == "AVG") spec.kind = AggKind::kAvg;
        else if (root->func == "COUNT") spec.kind = AggKind::kCount;
        else if (root->func == "MIN") spec.kind = AggKind::kMin;
        else spec.kind = AggKind::kMax;
        spec.expr = arg;
      }
      agg_refs.push_back({root.get(), group_cols.size() + specs.size()});
      specs.push_back(std::move(spec));
      return Status::OK();
    }
    for (const SqlExprPtr& c : root->children) {
      BIH_RETURN_IF_ERROR(self(c, self));
    }
    return Status::OK();
  };
  for (const SelectItem& item : stmt.items) {
    BIH_RETURN_IF_ERROR(register_aggregates(item.expr, register_aggregates));
  }
  BIH_RETURN_IF_ERROR(register_aggregates(stmt.having, register_aggregates));
  for (const OrderItem& item : stmt.order_by) {
    BIH_RETURN_IF_ERROR(register_aggregates(item.expr, register_aggregates));
  }

  plan = AggregatePlan(std::move(plan), group_cols, specs);

  // Rebind expressions over the aggregate output: group columns map to the
  // leading positions, aggregate calls to their registered slots.
  auto bind_over_agg = [&](const SqlExprPtr& root, auto&& self,
                           ExprPtr* bound) -> Status {
    if (root->kind == SqlExpr::Kind::kAggregate) {
      for (const AggRef& ref : agg_refs) {
        if (ref.call == root.get()) {
          *bound = Col(static_cast<int>(ref.output_pos));
          return Status::OK();
        }
      }
      return Status::Internal("unregistered aggregate");
    }
    if (root->kind == SqlExpr::Kind::kColumn) {
      int pos;
      BIH_RETURN_IF_ERROR(binder.ResolveColumn(*root, &pos));
      for (size_t i = 0; i < group_cols.size(); ++i) {
        if (group_cols[i] == pos) {
          *bound = Col(static_cast<int>(i));
          return Status::OK();
        }
      }
      return Status::InvalidArgument("column '" + root->name +
                                     "' must appear in GROUP BY");
    }
    if (root->kind == SqlExpr::Kind::kLiteral) {
      *bound = Lit(root->literal);
      return Status::OK();
    }
    // Recurse through scalar operators.
    std::vector<ExprPtr> kids;
    for (const SqlExprPtr& c : root->children) {
      ExprPtr k;
      BIH_RETURN_IF_ERROR(self(c, self, &k));
      kids.push_back(k);
    }
    const std::string& op = root->op;
    if (root->kind == SqlExpr::Kind::kBinary) {
      if (op == "+") *bound = Add(kids[0], kids[1]);
      else if (op == "-") *bound = Sub(kids[0], kids[1]);
      else if (op == "*") *bound = Mul(kids[0], kids[1]);
      else if (op == "/") *bound = Div(kids[0], kids[1]);
      else if (op == "=") *bound = Eq(kids[0], kids[1]);
      else if (op == "<>") *bound = Ne(kids[0], kids[1]);
      else if (op == "<") *bound = Lt(kids[0], kids[1]);
      else if (op == "<=") *bound = Le(kids[0], kids[1]);
      else if (op == ">") *bound = Gt(kids[0], kids[1]);
      else if (op == ">=") *bound = Ge(kids[0], kids[1]);
      else if (op == "AND") *bound = And(kids[0], kids[1]);
      else if (op == "OR") *bound = Or(kids[0], kids[1]);
      else return Status::Internal("unknown operator " + op);
      return Status::OK();
    }
    if (root->kind == SqlExpr::Kind::kUnary) {
      *bound = Not(kids[0]);
      return Status::OK();
    }
    if (root->kind == SqlExpr::Kind::kBetween) {
      *bound = Between(kids[0], kids[1], kids[2]);
      return Status::OK();
    }
    return Status::Unimplemented("expression kind not allowed after GROUP BY");
  };

  if (stmt.having != nullptr) {
    ExprPtr pred;
    BIH_RETURN_IF_ERROR(bind_over_agg(stmt.having, bind_over_agg, &pred));
    plan = FilterPlan(std::move(plan), pred);
  }
  if (!stmt.order_by.empty()) {
    std::vector<SortSpec> keys;
    for (const OrderItem& item : stmt.order_by) {
      SqlExprPtr target = item.expr;
      if (target->kind == SqlExpr::Kind::kColumn && target->qualifier.empty()) {
        for (const SelectItem& si : stmt.items) {
          if (!si.alias.empty() && si.alias == target->name) {
            target = si.expr;
            break;
          }
        }
      }
      ExprPtr bound;
      BIH_RETURN_IF_ERROR(bind_over_agg(target, bind_over_agg, &bound));
      keys.push_back(SortSpec{bound, item.ascending});
    }
    plan = SortPlan(std::move(plan), std::move(keys));
  }
  if (stmt.limit >= 0) {
    plan = LimitPlan(std::move(plan), static_cast<size_t>(stmt.limit));
  }

  std::vector<ExprPtr> projections;
  columns->clear();
  for (size_t i = 0; i < stmt.items.size(); ++i) {
    ExprPtr e;
    BIH_RETURN_IF_ERROR(bind_over_agg(stmt.items[i].expr, bind_over_agg, &e));
    projections.push_back(e);
    columns->push_back(DeriveName(stmt.items[i], i));
  }
  plan = ProjectPlan(std::move(plan), std::move(projections));
  if (stmt.distinct) plan = DistinctPlan(std::move(plan));
  *out_plan = std::move(plan);
  return Status::OK();
}

Status ExecuteSelect(TemporalEngine& engine, const SelectStatement& stmt,
                     SqlResult* out, QueryContext* ctx,
                     const ExecOptions& opts) {
  PlanPtr plan;
  out->columns.clear();
  BIH_RETURN_IF_ERROR(PlanSelect(engine, stmt, &plan, &out->columns));
  OptimizePlan(&plan, engine);
  out->rows.clear();
  Status st = Execute(*plan, engine, opts, ctx, &out->rows);
  if (!st.ok()) out->rows.clear();  // never surface partial results
  return st;
}

Status ExecuteDml(TemporalEngine& engine, const DmlStatement& stmt,
                  SqlResult* out, QueryContext* ctx) {
  if (!engine.HasTable(stmt.table)) {
    return Status::NotFound("no table named " + stmt.table);
  }
  const TableDef& def = engine.GetTableDef(stmt.table);
  const std::vector<ScopeColumn> empty_scope;
  Binder const_binder(&empty_scope);
  out->columns = {"AFFECTED"};

  if (stmt.kind == DmlStatement::Kind::kInsert) {
    if (static_cast<int>(stmt.values.size()) != def.schema.num_columns()) {
      return Status::InvalidArgument(
          "INSERT arity mismatch: table " + stmt.table + " has " +
          std::to_string(def.schema.num_columns()) + " columns");
    }
    Row row;
    for (const SqlExprPtr& v : stmt.values) {
      ExprPtr bound;
      BIH_RETURN_IF_ERROR(const_binder.Bind(v, &bound));
      row.push_back(bound->Eval({}));
    }
    BIH_RETURN_IF_ERROR(engine.Insert(stmt.table, std::move(row)));
    out->rows = {{Value(int64_t{1})}};
    return Status::OK();
  }

  // UPDATE / DELETE: resolve the portion clause.
  int period_index = 0;
  if (stmt.has_portion) {
    if (def.app_periods.empty()) {
      return Status::InvalidArgument("table " + stmt.table +
                                     " has no application-time period");
    }
    if (stmt.portion_period != "BUSINESS_TIME") {
      period_index = def.FindAppPeriod(stmt.portion_period);
      if (period_index < 0) {
        return Status::InvalidArgument("table " + stmt.table +
                                       " has no period named " +
                                       stmt.portion_period);
      }
    }
  }

  // Constant assignments resolved to column positions.
  std::vector<ColumnAssignment> set;
  for (const auto& [col, expr] : stmt.assignments) {
    int pos = def.schema.FindColumn(col);
    if (pos < 0) {
      return Status::InvalidArgument("unknown column '" + col + "'");
    }
    ExprPtr bound;
    Status st = const_binder.Bind(expr, &bound);
    if (!st.ok()) {
      return Status::Unimplemented(
          "SET supports only constant expressions: " + st.message());
    }
    set.push_back(ColumnAssignment{pos, bound->Eval({})});
  }

  // Matching keys from the currently visible rows.
  std::vector<ScopeColumn> scope;
  Schema scan_schema = engine.ScanSchema(stmt.table);
  for (const Column& c : scan_schema.columns()) {
    scope.push_back(ScopeColumn{stmt.table, c.name});
  }
  Binder binder(&scope);
  ExprPtr pred = nullptr;
  if (stmt.where != nullptr) {
    BIH_RETURN_IF_ERROR(binder.Bind(stmt.where, &pred));
  }
  struct KeyCmp {
    bool operator()(const std::vector<Value>& a,
                    const std::vector<Value>& b) const {
      return CompareKeys(a, b) < 0;
    }
  };
  std::set<std::vector<Value>, KeyCmp> keys;
  ScanRequest req;
  req.table = stmt.table;
  req.ctx = ctx;
  engine.Scan(req, [&](const Row& row) {
    if (pred != nullptr && !pred->Test(row)) return true;
    std::vector<Value> key;
    for (int c : def.primary_key) key.push_back(row[static_cast<size_t>(c)]);
    keys.insert(std::move(key));
    return true;
  });

  if (ctx != nullptr) BIH_RETURN_IF_ERROR(ctx->CheckNow());

  Period portion(stmt.portion_from, stmt.portion_to);
  engine.Begin();
  for (const std::vector<Value>& key : keys) {
    if (ctx != nullptr) {
      Status interrupted = ctx->CheckNow();
      if (!interrupted.ok()) {
        // Commit the keys already applied (each key is its own statement;
        // the Begin/Commit pair only batches the log flush) and report why
        // the batch stopped.
        Status commit = engine.Commit();
        (void)commit;  // the interruption verdict is the actionable error
        return interrupted;
      }
    }
    Status st;
    if (stmt.kind == DmlStatement::Kind::kUpdate) {
      st = stmt.has_portion
               ? engine.UpdateSequenced(stmt.table, key, period_index,
                                        portion, set)
               : engine.UpdateCurrent(stmt.table, key, set);
    } else {
      st = stmt.has_portion
               ? engine.DeleteSequenced(stmt.table, key, period_index, portion)
               : engine.DeleteCurrent(stmt.table, key);
    }
    if (!st.ok()) {
      Status commit = engine.Commit();
      (void)commit;
      return st;
    }
  }
  BIH_RETURN_IF_ERROR(engine.Commit());
  out->rows = {{Value(static_cast<int64_t>(keys.size()))}};
  return Status::OK();
}

namespace {

// Strips a leading (case-insensitive) EXPLAIN keyword; true when present.
bool StripExplainPrefix(const std::string& text, std::string* rest) {
  static const char kKeyword[] = "EXPLAIN";
  size_t i = text.find_first_not_of(" \t\r\n");
  if (i == std::string::npos) return false;
  for (size_t k = 0; kKeyword[k] != '\0'; ++k, ++i) {
    if (i >= text.size() ||
        std::toupper(static_cast<unsigned char>(text[i])) != kKeyword[k]) {
      return false;
    }
  }
  if (i >= text.size() ||
      !std::isspace(static_cast<unsigned char>(text[i]))) {
    return false;
  }
  *rest = text.substr(i);
  return true;
}

}  // namespace

Status Explain(TemporalEngine& engine, const std::string& text,
               std::string* json, QueryContext* ctx, const ExecOptions& opts) {
  SelectStatement stmt;
  BIH_RETURN_IF_ERROR(ParseSelect(text, &stmt));
  PlanPtr plan;
  std::vector<std::string> columns;
  BIH_RETURN_IF_ERROR(PlanSelect(engine, stmt, &plan, &columns));
  OptimizerReport report;
  OptimizePlan(&plan, engine, &report);
  Rows rows;
  BIH_RETURN_IF_ERROR(Execute(*plan, engine, opts, ctx, &rows));
  *json = "{\"optimizer\":{\"predicates_pushed\":" +
          std::to_string(report.predicates_pushed) +
          ",\"conjuncts_folded\":" + std::to_string(report.conjuncts_folded) +
          ",\"temporal_rewrites\":" +
          std::to_string(report.temporal_rewrites) +
          ",\"scans_pruned\":" + std::to_string(report.scans_pruned) +
          "},\"plan\":" + PlanToJson(*plan) + "}";
  return Status::OK();
}

Status ExecuteSql(TemporalEngine& engine, const std::string& text,
                  SqlResult* out, QueryContext* ctx, const ExecOptions& opts) {
  std::string rest;
  if (StripExplainPrefix(text, &rest)) {
    std::string json;
    BIH_RETURN_IF_ERROR(Explain(engine, rest, &json, ctx, opts));
    out->columns = {"PLAN"};
    out->rows = {{Value(json)}};
    return Status::OK();
  }
  if (LooksLikeDml(text)) {
    DmlStatement stmt;
    BIH_RETURN_IF_ERROR(ParseDml(text, &stmt));
    return ExecuteDml(engine, stmt, out, ctx);
  }
  SelectStatement stmt;
  BIH_RETURN_IF_ERROR(ParseSelect(text, &stmt));
  return ExecuteSelect(engine, stmt, out, ctx, opts);
}

}  // namespace sql
}  // namespace bih
