#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "temporal/clock.h"
#include "temporal/sequenced.h"
#include "temporal/temporal.h"
#include "temporal/timeline.h"

namespace bih {
namespace {

// A two-column row: value + [begin, end) period in columns 1 and 2.
Row V(double value, int64_t b, int64_t e) {
  return {Value(value), Value(b), Value(e)};
}

constexpr int kB = 1, kE = 2;

TEST(SequencedUpdateTest, FullOverlapReplacesValue) {
  std::vector<Row> versions{V(1.0, 10, 20)};
  SequencedOps ops = PlanSequencedUpdate(versions, kB, kE, Period(0, 100),
                                         {{0, Value(9.0)}});
  ASSERT_EQ(1u, ops.to_close.size());
  ASSERT_EQ(1u, ops.to_insert.size());
  EXPECT_DOUBLE_EQ(9.0, ops.to_insert[0][0].AsDouble());
  EXPECT_EQ(Period(10, 20), RowPeriod(ops.to_insert[0], kB, kE));
}

TEST(SequencedUpdateTest, PartialOverlapSplitsIntoThree) {
  std::vector<Row> versions{V(1.0, 10, 30)};
  SequencedOps ops = PlanSequencedUpdate(versions, kB, kE, Period(15, 25),
                                         {{0, Value(9.0)}});
  ASSERT_EQ(1u, ops.to_close.size());
  ASSERT_EQ(3u, ops.to_insert.size());
  EXPECT_EQ(Period(10, 15), RowPeriod(ops.to_insert[0], kB, kE));
  EXPECT_DOUBLE_EQ(1.0, ops.to_insert[0][0].AsDouble());
  EXPECT_EQ(Period(15, 25), RowPeriod(ops.to_insert[1], kB, kE));
  EXPECT_DOUBLE_EQ(9.0, ops.to_insert[1][0].AsDouble());
  EXPECT_EQ(Period(25, 30), RowPeriod(ops.to_insert[2], kB, kE));
  EXPECT_DOUBLE_EQ(1.0, ops.to_insert[2][0].AsDouble());
}

TEST(SequencedUpdateTest, NonOverlappingVersionUntouched) {
  std::vector<Row> versions{V(1.0, 10, 20), V(2.0, 40, 50)};
  SequencedOps ops = PlanSequencedUpdate(versions, kB, kE, Period(12, 18),
                                         {{0, Value(9.0)}});
  ASSERT_EQ(1u, ops.to_close.size());
  EXPECT_EQ(0u, ops.to_close[0]);
}

TEST(SequencedUpdateTest, OpenEndedVersionSplit) {
  std::vector<Row> versions{V(1.0, 10, Period::kForever)};
  SequencedOps ops = PlanSequencedUpdate(
      versions, kB, kE, Period(20, Period::kForever), {{0, Value(9.0)}});
  ASSERT_EQ(2u, ops.to_insert.size());
  EXPECT_EQ(Period(10, 20), RowPeriod(ops.to_insert[0], kB, kE));
  EXPECT_EQ(Period(20, Period::kForever),
            RowPeriod(ops.to_insert[1], kB, kE));
  EXPECT_DOUBLE_EQ(9.0, ops.to_insert[1][0].AsDouble());
}

TEST(SequencedDeleteTest, RemovesOverlapKeepsLeftovers) {
  std::vector<Row> versions{V(1.0, 10, 30)};
  SequencedOps ops = PlanSequencedDelete(versions, kB, kE, Period(15, 25));
  ASSERT_EQ(1u, ops.to_close.size());
  ASSERT_EQ(2u, ops.to_insert.size());
  EXPECT_EQ(Period(10, 15), RowPeriod(ops.to_insert[0], kB, kE));
  EXPECT_EQ(Period(25, 30), RowPeriod(ops.to_insert[1], kB, kE));
}

TEST(SequencedDeleteTest, FullDeleteLeavesNothing) {
  std::vector<Row> versions{V(1.0, 10, 30)};
  SequencedOps ops = PlanSequencedDelete(versions, kB, kE, Period(0, 100));
  EXPECT_EQ(1u, ops.to_close.size());
  EXPECT_TRUE(ops.to_insert.empty());
}

TEST(OverwriteUpdateTest, MergesOverlappedIntoSingleWindow) {
  std::vector<Row> versions{V(1.0, 10, 20), V(2.0, 20, 30)};
  SequencedOps ops = PlanOverwriteUpdate(versions, kB, kE, Period(15, 25),
                                         {{0, Value(9.0)}});
  EXPECT_EQ(2u, ops.to_close.size());
  // Leftovers [10,15) and [25,30) plus one merged version [15,25).
  ASSERT_EQ(3u, ops.to_insert.size());
  const Row& merged = ops.to_insert.back();
  EXPECT_EQ(Period(15, 25), RowPeriod(merged, kB, kE));
  EXPECT_DOUBLE_EQ(9.0, merged[0].AsDouble());
}

TEST(OverwriteUpdateTest, NoOverlapIsNoOp) {
  std::vector<Row> versions{V(1.0, 10, 20)};
  SequencedOps ops = PlanOverwriteUpdate(versions, kB, kE, Period(50, 60),
                                         {{0, Value(9.0)}});
  EXPECT_TRUE(ops.to_close.empty());
  EXPECT_TRUE(ops.to_insert.empty());
}

// Property: after applying a sequenced update, the union of periods covered
// by the resulting versions equals the union before (updates never create
// or destroy coverage), and values inside the window changed.
struct SequencedPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(SequencedPropertyTest, CoverageIsPreserved) {
  Rng rng(static_cast<uint64_t>(GetParam()) + 9);
  for (int trial = 0; trial < 200; ++trial) {
    // Non-overlapping input versions.
    std::vector<Row> versions;
    int64_t cursor = rng.UniformInt(0, 10);
    for (int i = 0; i < 4; ++i) {
      int64_t b = cursor + rng.UniformInt(0, 5);
      int64_t e = b + rng.UniformInt(1, 10);
      versions.push_back(V(double(i), b, e));
      cursor = e;
    }
    int64_t wb = rng.UniformInt(0, 40);
    Period window(wb, wb + rng.UniformInt(1, 20));
    SequencedOps ops = PlanSequencedUpdate(versions, kB, kE, window,
                                           {{0, Value(99.0)}});
    // Rebuild the resulting version set.
    std::vector<Row> result;
    for (size_t i = 0; i < versions.size(); ++i) {
      if (std::find(ops.to_close.begin(), ops.to_close.end(), i) ==
          ops.to_close.end()) {
        result.push_back(versions[i]);
      }
    }
    for (const Row& r : ops.to_insert) result.push_back(r);
    // Point-by-point: coverage identical; value changed exactly inside the
    // window.
    for (int64_t t = 0; t < 70; ++t) {
      double before = -1, after = -1;
      for (const Row& v : versions) {
        if (RowPeriod(v, kB, kE).Contains(t)) before = v[0].AsDouble();
      }
      for (const Row& v : result) {
        if (RowPeriod(v, kB, kE).Contains(t)) after = v[0].AsDouble();
      }
      if (before < 0) {
        EXPECT_LT(after, 0) << "t=" << t;
      } else if (window.Contains(t)) {
        EXPECT_DOUBLE_EQ(99.0, after) << "t=" << t;
      } else {
        EXPECT_DOUBLE_EQ(before, after) << "t=" << t;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SequencedPropertyTest,
                         ::testing::Values(1, 2, 3));

TEST(TemporalSelectorTest, Matching) {
  Period valid(10, 20);
  EXPECT_TRUE(TemporalSelector::AsOf(15).Matches(valid, 100));
  EXPECT_FALSE(TemporalSelector::AsOf(20).Matches(valid, 100));
  EXPECT_TRUE(TemporalSelector::Between(18, 25).Matches(valid, 100));
  EXPECT_FALSE(TemporalSelector::Between(20, 25).Matches(valid, 100));
  EXPECT_TRUE(TemporalSelector::All().Matches(valid, 100));
  EXPECT_FALSE(TemporalSelector::ImplicitCurrent().Matches(valid, 100));
  EXPECT_TRUE(TemporalSelector::ImplicitCurrent().Matches(valid, 15));
}

TEST(TimelineTest, CountSweepSimple) {
  std::vector<TimelineEntry> entries{
      {Period(0, 10), 1.0, {}},
      {Period(5, 15), 2.0, {}},
  };
  auto slices = TemporalAggregate(entries, TemporalAggKind::kCount);
  ASSERT_EQ(3u, slices.size());
  EXPECT_EQ(Period(0, 5), slices[0].period);
  EXPECT_EQ(1, slices[0].count);
  EXPECT_EQ(Period(5, 10), slices[1].period);
  EXPECT_EQ(2, slices[1].count);
  EXPECT_EQ(Period(10, 15), slices[2].period);
  EXPECT_EQ(1, slices[2].count);
}

TEST(TimelineTest, OpenEndedEntriesReachForever) {
  std::vector<TimelineEntry> entries{{Period(5, Period::kForever), 3.0, {}}};
  auto slices = TemporalAggregate(entries, TemporalAggKind::kSum);
  ASSERT_EQ(1u, slices.size());
  EXPECT_EQ(Period(5, Period::kForever), slices[0].period);
  EXPECT_DOUBLE_EQ(3.0, slices[0].value);
}

struct TimelinePropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(TimelinePropertyTest, AgreesWithBruteForce) {
  Rng rng(static_cast<uint64_t>(GetParam()) + 77);
  for (TemporalAggKind kind :
       {TemporalAggKind::kSum, TemporalAggKind::kCount, TemporalAggKind::kAvg,
        TemporalAggKind::kMax, TemporalAggKind::kMin}) {
    std::vector<TimelineEntry> entries;
    for (int i = 0; i < 60; ++i) {
      int64_t b = rng.UniformInt(0, 100);
      entries.push_back(
          {Period(b, b + rng.UniformInt(1, 30)),
           static_cast<double>(rng.UniformInt(1, 100)), {}});
    }
    auto slices = TemporalAggregate(entries, kind);
    // Evaluate the aggregate directly at each slice midpoint-ish point.
    for (const TimelineSlice& s : slices) {
      int64_t t = s.period.begin;
      double sum = 0, mn = 0, mx = 0;
      int64_t count = 0;
      for (const TimelineEntry& e : entries) {
        if (e.period.Contains(t)) {
          if (count == 0) mn = mx = e.value;
          mn = std::min(mn, e.value);
          mx = std::max(mx, e.value);
          sum += e.value;
          ++count;
        }
      }
      ASSERT_GT(count, 0);
      EXPECT_EQ(count, s.count) << "t=" << t;
      double expect = 0;
      switch (kind) {
        case TemporalAggKind::kSum: expect = sum; break;
        case TemporalAggKind::kCount: expect = double(count); break;
        case TemporalAggKind::kAvg: expect = sum / double(count); break;
        case TemporalAggKind::kMax: expect = mx; break;
        case TemporalAggKind::kMin: expect = mn; break;
      }
      EXPECT_NEAR(expect, s.value, 1e-9) << "t=" << t;
    }
    // Slices are disjoint and ordered.
    for (size_t i = 1; i < slices.size(); ++i) {
      EXPECT_LE(slices[i - 1].period.end, slices[i].period.begin);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TimelinePropertyTest, ::testing::Values(1, 2));

TEST(IntervalJoinTest, MatchesBruteForce) {
  Rng rng(123);
  std::vector<Period> left, right;
  for (int i = 0; i < 80; ++i) {
    int64_t b = rng.UniformInt(0, 100);
    left.emplace_back(b, b + rng.UniformInt(1, 20));
    b = rng.UniformInt(0, 100);
    right.emplace_back(b, b + rng.UniformInt(1, 20));
  }
  std::set<std::pair<size_t, size_t>> expect, got;
  for (size_t i = 0; i < left.size(); ++i) {
    for (size_t j = 0; j < right.size(); ++j) {
      if (left[i].Overlaps(right[j])) expect.insert({i, j});
    }
  }
  IntervalJoin(left, right, [&](size_t l, size_t r, const Period& overlap) {
    EXPECT_TRUE(overlap.Valid());
    EXPECT_TRUE(left[l].Contains(overlap.begin));
    got.insert({l, r});
  });
  EXPECT_EQ(expect, got);
}

TEST(IntervalJoinTest, OpenEndedPeriods) {
  std::vector<Period> left{Period(0, Period::kForever)};
  std::vector<Period> right{Period(100, 200), Period(50, 60)};
  int matches = 0;
  IntervalJoin(left, right, [&](size_t, size_t, const Period&) { ++matches; });
  EXPECT_EQ(2, matches);
}

TEST(CommitClockTest, MonotonicAndDeterministic) {
  CommitClock a, b;
  Timestamp prev = a.Now();
  for (int i = 0; i < 10; ++i) {
    Timestamp t = a.NextCommit();
    EXPECT_GT(t, prev);
    prev = t;
    EXPECT_EQ(t, b.NextCommit());
  }
}

}  // namespace
}  // namespace bih
