#include "exec/plan.h"

#include <algorithm>
#include <atomic>
#include <numeric>
#include <set>
#include <unordered_map>
#include <utility>

#include "common/json.h"
#include "exec/parallel.h"

namespace bih {

const char* PlanNode::KindName() const {
  switch (kind) {
    case Kind::kScan:
      return "Scan";
    case Kind::kValues:
      return "Values";
    case Kind::kFilter:
      return "Filter";
    case Kind::kProject:
      return "Project";
    case Kind::kHashJoin:
      return "HashJoin";
    case Kind::kMergeJoin:
      return "MergeJoin";
    case Kind::kIndexJoin:
      return "IndexJoin";
    case Kind::kCrossJoin:
      return "CrossJoin";
    case Kind::kAggregate:
      return "Aggregate";
    case Kind::kSort:
      return "Sort";
    case Kind::kLimit:
      return "Limit";
    case Kind::kDistinct:
      return "Distinct";
  }
  return "?";
}

// ---- Builders -----------------------------------------------------------

namespace {

PlanPtr MakeNode(PlanNode::Kind kind) {
  auto n = std::make_unique<PlanNode>();
  n->kind = kind;
  return n;
}

}  // namespace

PlanPtr ScanPlan(ScanRequest req) {
  PlanPtr n = MakeNode(PlanNode::Kind::kScan);
  n->scan = std::move(req);
  return n;
}

PlanPtr ValuesPlan(Rows rows) {
  PlanPtr n = MakeNode(PlanNode::Kind::kValues);
  n->values = std::move(rows);
  return n;
}

PlanPtr FilterPlan(PlanPtr input, ExprPtr predicate) {
  PlanPtr n = MakeNode(PlanNode::Kind::kFilter);
  n->children.push_back(std::move(input));
  n->predicate = std::move(predicate);
  return n;
}

PlanPtr ProjectPlan(PlanPtr input, std::vector<ExprPtr> exprs) {
  PlanPtr n = MakeNode(PlanNode::Kind::kProject);
  n->children.push_back(std::move(input));
  n->exprs = std::move(exprs);
  return n;
}

PlanPtr HashJoinPlan(PlanPtr left, PlanPtr right, std::vector<int> left_keys,
                     std::vector<int> right_keys, size_t right_width,
                     JoinType type, ExprPtr residual) {
  BIH_CHECK(left_keys.size() == right_keys.size());
  PlanPtr n = MakeNode(PlanNode::Kind::kHashJoin);
  n->children.push_back(std::move(left));
  n->children.push_back(std::move(right));
  n->left_keys = std::move(left_keys);
  n->right_keys = std::move(right_keys);
  n->right_width = right_width;
  n->join_type = type;
  n->predicate = std::move(residual);
  return n;
}

PlanPtr MergeJoinPlan(PlanPtr left, PlanPtr right, std::vector<int> left_keys,
                      std::vector<int> right_keys, ExprPtr residual) {
  BIH_CHECK(left_keys.size() == right_keys.size());
  PlanPtr n = MakeNode(PlanNode::Kind::kMergeJoin);
  n->children.push_back(std::move(left));
  n->children.push_back(std::move(right));
  n->left_keys = std::move(left_keys);
  n->right_keys = std::move(right_keys);
  n->predicate = std::move(residual);
  return n;
}

PlanPtr IndexJoinPlan(PlanPtr left, std::vector<int> left_keys,
                      std::string table, std::vector<int> table_keys,
                      TemporalScanSpec spec, ExprPtr residual) {
  BIH_CHECK(left_keys.size() == table_keys.size());
  PlanPtr n = MakeNode(PlanNode::Kind::kIndexJoin);
  n->children.push_back(std::move(left));
  n->left_keys = std::move(left_keys);
  n->right_keys = std::move(table_keys);
  n->index_table = std::move(table);
  n->index_spec = spec;
  n->predicate = std::move(residual);
  return n;
}

PlanPtr CrossJoinPlan(PlanPtr left, PlanPtr right, ExprPtr residual) {
  PlanPtr n = MakeNode(PlanNode::Kind::kCrossJoin);
  n->children.push_back(std::move(left));
  n->children.push_back(std::move(right));
  n->predicate = std::move(residual);
  return n;
}

PlanPtr AggregatePlan(PlanPtr input, std::vector<int> group_cols,
                      std::vector<AggSpec> aggs) {
  PlanPtr n = MakeNode(PlanNode::Kind::kAggregate);
  n->children.push_back(std::move(input));
  n->group_cols = std::move(group_cols);
  n->aggs = std::move(aggs);
  return n;
}

PlanPtr SortPlan(PlanPtr input, std::vector<SortSpec> keys) {
  PlanPtr n = MakeNode(PlanNode::Kind::kSort);
  n->children.push_back(std::move(input));
  n->sort_keys = std::move(keys);
  return n;
}

PlanPtr LimitPlan(PlanPtr input, size_t limit) {
  PlanPtr n = MakeNode(PlanNode::Kind::kLimit);
  n->children.push_back(std::move(input));
  n->limit = limit;
  return n;
}

PlanPtr DistinctPlan(PlanPtr input) {
  PlanPtr n = MakeNode(PlanNode::Kind::kDistinct);
  n->children.push_back(std::move(input));
  return n;
}

// ---- Operator kernels (internal to this translation unit) ---------------

namespace {

struct RowKeyHash {
  size_t operator()(const Row& key) const {
    size_t h = 0x345678;
    for (const Value& v : key) h = h * 1000003ULL ^ v.Hash();
    return h;
  }
};
struct RowKeyEq {
  bool operator()(const Row& a, const Row& b) const {
    if (a.size() != b.size()) return false;
    for (size_t i = 0; i < a.size(); ++i) {
      if (a[i].Compare(b[i]) != 0) return false;
    }
    return true;
  }
};

Row KeyOf(const Row& row, const std::vector<int>& cols) {
  Row key;
  key.reserve(cols.size());
  for (int c : cols) key.push_back(row[static_cast<size_t>(c)]);
  return key;
}

int CompareKeyCols(const Row& a, const std::vector<int>& acols, const Row& b,
                   const std::vector<int>& bcols) {
  for (size_t i = 0; i < acols.size(); ++i) {
    int c = a[static_cast<size_t>(acols[i])].Compare(
        b[static_cast<size_t>(bcols[i])]);
    if (c != 0) return c;
  }
  return 0;
}

Rows FilterKernel(const Rows& in, const ExprPtr& pred, QueryContext* ctx) {
  Rows out;
  for (const Row& row : in) {
    if (ctx != nullptr && !ctx->KeepGoing()) return out;
    if (pred->Test(row)) out.push_back(row);
  }
  return out;
}

Rows ProjectKernel(const Rows& in, const std::vector<ExprPtr>& exprs,
                   QueryContext* ctx) {
  Rows out;
  out.reserve(in.size());
  for (const Row& row : in) {
    if (ctx != nullptr && !ctx->KeepGoing()) return out;
    Row r;
    r.reserve(exprs.size());
    for (const ExprPtr& e : exprs) r.push_back(e->Eval(row));
    out.push_back(std::move(r));
  }
  return out;
}

Rows HashJoinKernel(const Rows& left, const Rows& right,
                    const std::vector<int>& left_keys,
                    const std::vector<int>& right_keys, size_t right_width,
                    JoinType type, const ExprPtr& residual, QueryContext* ctx) {
  std::unordered_map<Row, std::vector<const Row*>, RowKeyHash, RowKeyEq> ht;
  ht.reserve(right.size());
  for (const Row& r : right) {
    if (ctx != nullptr && !ctx->KeepGoing()) return {};
    Row key = KeyOf(r, right_keys);
    bool null_key = false;
    for (const Value& v : key) null_key |= v.is_null();
    if (null_key) continue;  // NULL never matches in equi-joins
    ht[std::move(key)].push_back(&r);
  }
  Rows out;
  for (const Row& l : left) {
    if (ctx != nullptr && !ctx->KeepGoing()) return out;
    Row key = KeyOf(l, left_keys);
    bool null_key = false;
    for (const Value& v : key) null_key |= v.is_null();
    auto it = null_key ? ht.end() : ht.find(key);
    bool matched = false;
    if (it != ht.end()) {
      for (const Row* r : it->second) {
        Row joined = l;
        joined.insert(joined.end(), r->begin(), r->end());
        if (residual != nullptr && !residual->Test(joined)) continue;
        matched = true;
        out.push_back(std::move(joined));
      }
    }
    if (!matched && type == JoinType::kLeftOuter) {
      Row joined = l;
      joined.resize(joined.size() + right_width, Value::Null());
      out.push_back(std::move(joined));
    }
  }
  return out;
}

// Sorts `order` (a permutation of input positions) by (key columns, input
// position). The tie-break makes the comparator a total order, so every
// comparison sort yields the same unique sequence — the property that lets
// the parallel chunk-sort + merge below reproduce the serial result bit for
// bit.
void SortOrderByKeys(std::vector<uint64_t>* order, const Rows& rows,
                     const std::vector<int>& keys,
                     const ParallelScanPlan& plan, QueryContext* ctx,
                     bool* interrupted) {
  auto less = [&rows, &keys](uint64_t a, uint64_t b) {
    int c = CompareKeyCols(rows[a], keys, rows[b], keys);
    return c != 0 ? c < 0 : a < b;
  };
  const uint64_t n = order->size();
  if (!plan.Engage(n)) {
    std::sort(order->begin(), order->end(), less);
    return;
  }
  // Parallel leg: each worker sorts one contiguous chunk, then the
  // coordinator merges pairwise. The total order guarantees the merged
  // sequence equals the serial sort's.
  ParallelScanPlan chunked = plan;
  chunked.morsel_size =
      (n + static_cast<uint64_t>(plan.threads) - 1) /
      static_cast<uint64_t>(plan.threads);
  if (chunked.morsel_size == 0) chunked.morsel_size = 1;
  if (!ParallelMorselRun(chunked, n, ctx,
                         [&](uint64_t, uint64_t begin, uint64_t end,
                             const std::atomic<bool>&) {
                           std::sort(order->begin() + begin,
                                     order->begin() + end, less);
                         })) {
    *interrupted = true;
    return;
  }
  for (uint64_t width = chunked.morsel_size; width < n; width *= 2) {
    // The merges of one level cover disjoint ranges, so they too fan out
    // on the pool; the level barrier (each level doubles the width) is the
    // return of ParallelMorselRun.
    std::vector<uint64_t> heads;
    for (uint64_t i = 0; i + width < n; i += 2 * width) heads.push_back(i);
    if (heads.empty()) continue;
    auto merge_pair = [&](uint64_t i) {
      std::inplace_merge(order->begin() + i, order->begin() + i + width,
                         order->begin() + std::min(i + 2 * width, n), less);
    };
    if (heads.size() == 1) {
      merge_pair(heads[0]);
      continue;
    }
    ParallelScanPlan level = plan;
    level.morsel_size = 1;  // one merge per morsel
    if (!ParallelMorselRun(level, heads.size(), ctx,
                           [&](uint64_t, uint64_t begin, uint64_t end,
                               const std::atomic<bool>&) {
                             for (uint64_t p = begin; p < end; ++p) {
                               merge_pair(heads[p]);
                             }
                           })) {
      *interrupted = true;
      return;
    }
  }
}

// Emits the equal-key runs whose first left position lies in [begin, end).
// Runs are discovered by comparing each position's key with its
// predecessor, so a run straddling a morsel boundary is owned entirely by
// the morsel holding its head — emission in morsel order is exactly the
// serial left-to-right run order.
void MergeJoinEmitRuns(const Rows& left, const Rows& right,
                       const std::vector<uint64_t>& lorder,
                       const std::vector<uint64_t>& rorder,
                       const std::vector<int>& left_keys,
                       const std::vector<int>& right_keys,
                       const ExprPtr& residual, QueryContext* ctx,
                       uint64_t begin, uint64_t end,
                       const std::atomic<bool>& stop, Rows* out) {
  auto same_left_key = [&](uint64_t a, uint64_t b) {
    return CompareKeyCols(left[lorder[a]], left_keys, left[lorder[b]],
                          left_keys) == 0;
  };
  for (uint64_t p = begin; p < end; ++p) {
    if (p > 0 && same_left_key(p, p - 1)) continue;  // not a run head
    if (MorselInterrupted(stop, ctx)) return;
    const Row& head = left[lorder[p]];
    bool null_key = false;
    for (int k : left_keys) {
      null_key |= head[static_cast<size_t>(k)].is_null();
    }
    uint64_t lend = p + 1;
    while (lend < lorder.size() && same_left_key(lend, p)) ++lend;
    if (null_key) continue;  // NULL keys never join
    // Locate the matching right-side run by binary search.
    auto rlow = std::lower_bound(
        rorder.begin(), rorder.end(), head, [&](uint64_t r, const Row& h) {
          return CompareKeyCols(right[r], right_keys, h, left_keys) < 0;
        });
    auto rhigh = std::upper_bound(
        rlow, rorder.end(), head, [&](const Row& h, uint64_t r) {
          return CompareKeyCols(h, left_keys, right[r], right_keys) < 0;
        });
    for (uint64_t i = p; i < lend; ++i) {
      if (MorselInterrupted(stop, ctx)) return;
      for (auto rit = rlow; rit != rhigh; ++rit) {
        Row joined = left[lorder[i]];
        const Row& r = right[*rit];
        joined.insert(joined.end(), r.begin(), r.end());
        if (residual != nullptr && !residual->Test(joined)) continue;
        out->push_back(std::move(joined));
      }
    }
  }
}

// Sort-merge join, byte-identical between the serial path and the morsel
// pool: both paths sort by the same total order and emit runs in ascending
// head position; the parallel leg just assigns run heads to morsels and
// concatenates the per-morsel buffers in order.
Rows MergeJoinKernel(const Rows& left, const Rows& right,
                     const std::vector<int>& left_keys,
                     const std::vector<int>& right_keys,
                     const ExprPtr& residual, QueryContext* ctx,
                     const ParallelScanPlan& plan, bool* interrupted) {
  std::vector<uint64_t> lorder(left.size());
  std::vector<uint64_t> rorder(right.size());
  std::iota(lorder.begin(), lorder.end(), 0);
  std::iota(rorder.begin(), rorder.end(), 0);
  SortOrderByKeys(&lorder, left, left_keys, plan, ctx, interrupted);
  if (*interrupted) return {};
  SortOrderByKeys(&rorder, right, right_keys, plan, ctx, interrupted);
  if (*interrupted) return {};

  const uint64_t n = lorder.size();
  std::atomic<bool> no_stop{false};
  if (!plan.Engage(n)) {
    Rows out;
    MergeJoinEmitRuns(left, right, lorder, rorder, left_keys, right_keys,
                      residual, ctx, 0, n, no_stop, &out);
    if (ctx != nullptr && !ctx->status().ok()) *interrupted = true;
    return out;
  }
  std::vector<Rows> buffers(PlanMorselCount(plan, n));
  if (!ParallelMorselRun(plan, n, ctx,
                         [&](uint64_t m, uint64_t begin, uint64_t end,
                             const std::atomic<bool>& stop) {
                           MergeJoinEmitRuns(left, right, lorder, rorder,
                                             left_keys, right_keys, residual,
                                             ctx, begin, end, stop,
                                             &buffers[m]);
                         })) {
    *interrupted = true;
    return {};
  }
  Rows out;
  size_t total = 0;
  for (const Rows& b : buffers) total += b.size();
  out.reserve(total);
  for (Rows& b : buffers) {
    for (Row& r : b) out.push_back(std::move(r));
  }
  return out;
}

struct AggState {
  double sum = 0.0;
  int64_t count = 0;
  bool has = false;
  Value min, max;
  std::set<std::string> distinct;
};

void FinishAggregate(
    const std::vector<Row>& group_order,
    std::unordered_map<Row, std::vector<AggState>, RowKeyHash, RowKeyEq>&
        groups,
    const std::vector<AggSpec>& aggs, Rows* out) {
  out->reserve(group_order.size());
  for (const Row& key : group_order) {
    const std::vector<AggState>& st = groups[key];
    Row r = key;
    for (size_t i = 0; i < aggs.size(); ++i) {
      const AggState& s = st[i];
      switch (aggs[i].kind) {
        case AggKind::kSum:
          r.push_back(s.count == 0 ? Value::Null() : Value(s.sum));
          break;
        case AggKind::kAvg:
          r.push_back(s.count == 0
                          ? Value::Null()
                          : Value(s.sum / static_cast<double>(s.count)));
          break;
        case AggKind::kCount:
          r.push_back(Value(s.count));
          break;
        case AggKind::kMin:
          r.push_back(s.has ? s.min : Value::Null());
          break;
        case AggKind::kMax:
          r.push_back(s.has ? s.max : Value::Null());
          break;
        case AggKind::kCountDistinct:
          r.push_back(Value(static_cast<int64_t>(s.distinct.size())));
          break;
      }
    }
    out->push_back(std::move(r));
  }
}

Rows SerialAggregateKernel(const Rows& in, const std::vector<int>& group_cols,
                           const std::vector<AggSpec>& aggs,
                           QueryContext* ctx) {
  std::unordered_map<Row, std::vector<AggState>, RowKeyHash, RowKeyEq> groups;
  std::vector<Row> group_order;  // deterministic output order (first seen)
  for (const Row& row : in) {
    if (ctx != nullptr && !ctx->KeepGoing()) return {};
    Row key = KeyOf(row, group_cols);
    auto it = groups.find(key);
    if (it == groups.end()) {
      it = groups.emplace(key, std::vector<AggState>(aggs.size())).first;
      group_order.push_back(key);
    }
    std::vector<AggState>& st = it->second;
    for (size_t i = 0; i < aggs.size(); ++i) {
      const AggSpec& a = aggs[i];
      if (a.kind == AggKind::kCount && a.expr == nullptr) {
        ++st[i].count;
        continue;
      }
      Value v = a.expr->Eval(row);
      if (v.is_null()) continue;  // SQL aggregates skip NULLs
      AggState& s = st[i];
      switch (a.kind) {
        case AggKind::kSum:
        case AggKind::kAvg:
          s.sum += v.AsDouble();
          ++s.count;
          break;
        case AggKind::kCount:
          ++s.count;
          break;
        case AggKind::kMin:
          if (!s.has || v.Compare(s.min) < 0) s.min = v;
          s.has = true;
          break;
        case AggKind::kMax:
          if (!s.has || v.Compare(s.max) > 0) s.max = v;
          s.has = true;
          break;
        case AggKind::kCountDistinct:
          s.distinct.insert(v.ToString());
          break;
      }
    }
  }
  if (group_cols.empty() && groups.empty()) {
    groups.emplace(Row{}, std::vector<AggState>(aggs.size()));
    group_order.push_back(Row{});
  }
  Rows out;
  FinishAggregate(group_order, groups, aggs, &out);
  return out;
}

// Per-morsel aggregation partial. Floating-point addition is not
// associative, so kSum/kAvg partials keep the evaluated addends in row
// order instead of a partial sum; the coordinator folds them group by
// group in morsel order, which is exactly the serial per-group addition
// sequence — that is what makes the parallel aggregate byte-identical,
// not merely numerically close.
struct AggPartial {
  int64_t count = 0;
  bool has = false;
  Value min, max;
  std::set<std::string> distinct;
  std::vector<double> addends;
};

struct MorselGroups {
  std::unordered_map<Row, size_t, RowKeyHash, RowKeyEq> index;
  std::vector<Row> keys;  // first-seen order within the morsel
  std::vector<std::vector<AggPartial>> states;
};

Rows ParallelAggregateKernel(const Rows& in,
                             const std::vector<int>& group_cols,
                             const std::vector<AggSpec>& aggs,
                             QueryContext* ctx, const ParallelScanPlan& plan,
                             bool* interrupted) {
  std::vector<MorselGroups> partials(PlanMorselCount(plan, in.size()));
  if (!ParallelMorselRun(
          plan, in.size(), ctx,
          [&](uint64_t m, uint64_t begin, uint64_t end,
              const std::atomic<bool>& stop) {
            MorselGroups& mg = partials[m];
            for (uint64_t r = begin; r < end; ++r) {
              if (MorselInterrupted(stop, ctx)) return;
              const Row& row = in[r];
              Row key = KeyOf(row, group_cols);
              auto it = mg.index.find(key);
              if (it == mg.index.end()) {
                it = mg.index.emplace(key, mg.keys.size()).first;
                mg.keys.push_back(key);
                mg.states.emplace_back(aggs.size());
              }
              std::vector<AggPartial>& st = mg.states[it->second];
              for (size_t i = 0; i < aggs.size(); ++i) {
                const AggSpec& a = aggs[i];
                if (a.kind == AggKind::kCount && a.expr == nullptr) {
                  ++st[i].count;
                  continue;
                }
                Value v = a.expr->Eval(row);
                if (v.is_null()) continue;
                AggPartial& s = st[i];
                switch (a.kind) {
                  case AggKind::kSum:
                  case AggKind::kAvg:
                    s.addends.push_back(v.AsDouble());
                    break;
                  case AggKind::kCount:
                    ++s.count;
                    break;
                  case AggKind::kMin:
                    if (!s.has || v.Compare(s.min) < 0) s.min = v;
                    s.has = true;
                    break;
                  case AggKind::kMax:
                    if (!s.has || v.Compare(s.max) > 0) s.max = v;
                    s.has = true;
                    break;
                  case AggKind::kCountDistinct:
                    s.distinct.insert(v.ToString());
                    break;
                }
              }
            }
          })) {
    *interrupted = true;
    return {};
  }

  // Final merge on the coordinator, in morsel order: group discovery order
  // equals the serial first-seen order, and each group's addends fold in
  // the serial row order.
  std::unordered_map<Row, std::vector<AggState>, RowKeyHash, RowKeyEq> groups;
  std::vector<Row> group_order;
  for (const MorselGroups& mg : partials) {
    for (size_t g = 0; g < mg.keys.size(); ++g) {
      const Row& key = mg.keys[g];
      auto it = groups.find(key);
      if (it == groups.end()) {
        it = groups.emplace(key, std::vector<AggState>(aggs.size())).first;
        group_order.push_back(key);
      }
      std::vector<AggState>& st = it->second;
      const std::vector<AggPartial>& ps = mg.states[g];
      for (size_t i = 0; i < aggs.size(); ++i) {
        const AggPartial& p = ps[i];
        AggState& s = st[i];
        switch (aggs[i].kind) {
          case AggKind::kSum:
          case AggKind::kAvg:
            for (double a : p.addends) {
              s.sum += a;
              ++s.count;
            }
            break;
          case AggKind::kCount:
            s.count += p.count;
            break;
          case AggKind::kMin:
            if (p.has && (!s.has || p.min.Compare(s.min) < 0)) s.min = p.min;
            s.has |= p.has;
            break;
          case AggKind::kMax:
            if (p.has && (!s.has || p.max.Compare(s.max) > 0)) s.max = p.max;
            s.has |= p.has;
            break;
          case AggKind::kCountDistinct:
            s.distinct.insert(p.distinct.begin(), p.distinct.end());
            break;
        }
      }
    }
  }
  if (group_cols.empty() && groups.empty()) {
    groups.emplace(Row{}, std::vector<AggState>(aggs.size()));
    group_order.push_back(Row{});
  }
  Rows out;
  FinishAggregate(group_order, groups, aggs, &out);
  return out;
}

Rows SortKernel(Rows in, const std::vector<SortSpec>& keys,
                QueryContext* ctx) {
  // Decorate-sort-strip: evaluate every key against the undecorated row,
  // append, stable-sort on the appended columns, strip. This is exactly the
  // ORDER BY lowering the SQL executor used, so expression sorts stay
  // byte-compatible.
  const size_t nk = keys.size();
  for (Row& r : in) {
    if (ctx != nullptr && !ctx->KeepGoing()) break;
    Row vals;
    vals.reserve(nk);
    for (const SortSpec& k : keys) vals.push_back(k.key->Eval(r));
    for (Value& v : vals) r.push_back(std::move(v));
  }
  if (ctx != nullptr && !ctx->status().ok()) return in;
  std::stable_sort(in.begin(), in.end(), [&](const Row& a, const Row& b) {
    for (size_t i = 0; i < nk; ++i) {
      int c = a[a.size() - nk + i].Compare(b[b.size() - nk + i]);
      if (c != 0) return keys[i].ascending ? c < 0 : c > 0;
    }
    return false;
  });
  for (Row& r : in) r.resize(r.size() - nk);
  return in;
}

Rows DistinctKernel(const Rows& in, QueryContext* ctx) {
  Rows out;
  std::unordered_map<Row, bool, RowKeyHash, RowKeyEq> seen;
  for (const Row& r : in) {
    if (ctx != nullptr && !ctx->KeepGoing()) return out;
    if (seen.emplace(r, true).second) out.push_back(r);
  }
  return out;
}

// ---- Tree walker --------------------------------------------------------

struct Executor {
  TemporalEngine& engine;
  const ExecOptions& opts;
  QueryContext* ctx;

  Status Boundary() const {
    return ctx != nullptr ? ctx->CheckNow() : Status::OK();
  }

  Status Run(const PlanNode& n, Rows* out) {
    n.stats = PlanStats{};
    out->clear();
    switch (n.kind) {
      case PlanNode::Kind::kScan: {
        ScanRequest req = n.scan;
        if (req.ctx == nullptr) req.ctx = ctx;
        req.exec = MergeExecOptions(req.exec, opts);
        engine.Scan(req, [&](const Row& row) {
          out->push_back(row);
          return true;
        });
        // A request that redirected its counters keeps them; otherwise the
        // engine published to its shared slot and we copy from there (the
        // pre-existing advisory, last-writer-wins contract).
        n.stats.scan =
            req.stats != nullptr ? *req.stats : engine.last_stats();
        break;
      }
      case PlanNode::Kind::kValues:
        *out = n.values;
        break;
      case PlanNode::Kind::kFilter: {
        Rows in;
        BIH_RETURN_IF_ERROR(Run(*n.children[0], &in));
        *out = FilterKernel(in, n.predicate, ctx);
        break;
      }
      case PlanNode::Kind::kProject: {
        Rows in;
        BIH_RETURN_IF_ERROR(Run(*n.children[0], &in));
        *out = ProjectKernel(in, n.exprs, ctx);
        break;
      }
      case PlanNode::Kind::kHashJoin: {
        Rows left, right;
        BIH_RETURN_IF_ERROR(Run(*n.children[0], &left));
        BIH_RETURN_IF_ERROR(Run(*n.children[1], &right));
        *out = HashJoinKernel(left, right, n.left_keys, n.right_keys,
                              n.right_width, n.join_type, n.predicate, ctx);
        break;
      }
      case PlanNode::Kind::kMergeJoin: {
        Rows left, right;
        BIH_RETURN_IF_ERROR(Run(*n.children[0], &left));
        BIH_RETURN_IF_ERROR(Run(*n.children[1], &right));
        bool interrupted = false;
        const ParallelScanPlan plan =
            ResolveScanPlan(MergeExecOptions(n.scan.exec, opts));
        *out = MergeJoinKernel(left, right, n.left_keys, n.right_keys,
                               n.predicate, ctx, plan, &interrupted);
        break;
      }
      case PlanNode::Kind::kIndexJoin: {
        Rows left;
        BIH_RETURN_IF_ERROR(Run(*n.children[0], &left));
        ExecStats probe_stats;
        for (const Row& l : left) {
          if (ctx != nullptr && !ctx->KeepGoing()) break;
          ScanRequest req;
          req.table = n.index_table;
          req.temporal = n.index_spec;
          req.ctx = ctx;
          req.exec = MergeExecOptions(req.exec, opts);
          // Inner probes must not clobber the engine's shared last_stats()
          // slot when running under a concurrent session.
          if (ctx != nullptr) req.stats = &probe_stats;
          bool null_key = false;
          for (size_t i = 0; i < n.left_keys.size(); ++i) {
            const Value& v = l[static_cast<size_t>(n.left_keys[i])];
            null_key |= v.is_null();
            req.equals.emplace_back(n.right_keys[i], v);
          }
          if (null_key) continue;
          engine.Scan(req, [&](const Row& r) {
            Row joined = l;
            joined.insert(joined.end(), r.begin(), r.end());
            if (n.predicate == nullptr || n.predicate->Test(joined)) {
              out->push_back(std::move(joined));
            }
            return true;
          });
        }
        n.stats.scan = ctx != nullptr ? probe_stats : engine.last_stats();
        break;
      }
      case PlanNode::Kind::kCrossJoin: {
        Rows left, right;
        BIH_RETURN_IF_ERROR(Run(*n.children[0], &left));
        BIH_RETURN_IF_ERROR(Run(*n.children[1], &right));
        for (const Row& l : left) {
          if (ctx != nullptr && !ctx->KeepGoing()) break;
          for (const Row& r : right) {
            Row joined = l;
            joined.insert(joined.end(), r.begin(), r.end());
            if (n.predicate != nullptr && !n.predicate->Test(joined)) {
              continue;
            }
            out->push_back(std::move(joined));
          }
        }
        break;
      }
      case PlanNode::Kind::kAggregate: {
        Rows in;
        BIH_RETURN_IF_ERROR(Run(*n.children[0], &in));
        const ParallelScanPlan plan =
            ResolveScanPlan(MergeExecOptions(n.scan.exec, opts));
        if (plan.Engage(in.size())) {
          bool interrupted = false;
          *out = ParallelAggregateKernel(in, n.group_cols, n.aggs, ctx, plan,
                                         &interrupted);
        } else {
          *out = SerialAggregateKernel(in, n.group_cols, n.aggs, ctx);
        }
        break;
      }
      case PlanNode::Kind::kSort: {
        Rows in;
        BIH_RETURN_IF_ERROR(Run(*n.children[0], &in));
        *out = SortKernel(std::move(in), n.sort_keys, ctx);
        break;
      }
      case PlanNode::Kind::kLimit: {
        Rows in;
        BIH_RETURN_IF_ERROR(Run(*n.children[0], &in));
        *out = std::move(in);
        if (out->size() > n.limit) out->resize(n.limit);
        break;
      }
      case PlanNode::Kind::kDistinct: {
        Rows in;
        BIH_RETURN_IF_ERROR(Run(*n.children[0], &in));
        *out = DistinctKernel(in, ctx);
        break;
      }
    }
    n.stats.rows_output = out->size();
    return Boundary();
  }
};

bool IsInterrupt(const Status& s) {
  return s.code() == Status::Code::kCancelled ||
         s.code() == Status::Code::kDeadlineExceeded;
}

}  // namespace

Status Execute(const PlanNode& plan, TemporalEngine& engine,
               const ExecOptions& opts, QueryContext* ctx, Rows* out) {
  Executor exec{engine, opts, ctx};
  return exec.Run(plan, out);
}

Rows RunPlan(const PlanNode& plan, TemporalEngine& engine, QueryContext* ctx,
             const ExecOptions& opts) {
  Rows out;
  Status st = Execute(plan, engine, opts, ctx, &out);
  BIH_CHECK_MSG(st.ok() || IsInterrupt(st), st.ToString());
  return out;
}

// ---- EXPLAIN rendering --------------------------------------------------

namespace {

std::string SelectorString(const TemporalSelector& s) { return s.ToString(); }

void AppendScanJson(const ScanRequest& req, std::string* out) {
  *out += ",\"table\":" + JsonQuote(req.table);
  *out += ",\"system_time\":" + JsonQuote(SelectorString(req.temporal.system_time));
  *out += ",\"app_time\":" + JsonQuote(SelectorString(req.temporal.app_time));
  if (req.temporal.app_period_index != 0) {
    *out += ",\"app_period\":" +
            std::to_string(req.temporal.app_period_index);
  }
  if (!req.equals.empty()) {
    *out += ",\"equals\":[";
    for (size_t i = 0; i < req.equals.size(); ++i) {
      if (i) *out += ",";
      *out += "{\"col\":" + std::to_string(req.equals[i].first) +
              ",\"value\":" + JsonQuote(req.equals[i].second.ToString()) + "}";
    }
    *out += "]";
  }
  if (req.range_col >= 0) {
    *out += ",\"range_col\":" + std::to_string(req.range_col);
    *out += ",\"range_lo\":" + JsonQuote(req.range_lo.ToString());
    *out += ",\"range_hi\":" + JsonQuote(req.range_hi.ToString());
  }
  if (!req.projection.empty()) {
    *out += ",\"projection\":[";
    for (size_t i = 0; i < req.projection.size(); ++i) {
      if (i) *out += ",";
      *out += std::to_string(req.projection[i]);
    }
    *out += "]";
  }
}

void AppendScanStatsJson(const ExecStats& s, std::string* out) {
  *out += ",\"rows_examined\":" + std::to_string(s.rows_examined);
  *out += ",\"partitions_touched\":" + std::to_string(s.partitions_touched);
  *out += std::string(",\"used_index\":") + (s.used_index ? "true" : "false");
  if (!s.index_name.empty()) {
    *out += ",\"index\":" + JsonQuote(s.index_name);
  }
  *out += std::string(",\"touched_history\":") +
          (s.touched_history ? "true" : "false");
}

void NodeToJson(const PlanNode& n, std::string* out) {
  *out += "{\"node\":" + JsonQuote(n.KindName());
  switch (n.kind) {
    case PlanNode::Kind::kScan:
      AppendScanJson(n.scan, out);
      AppendScanStatsJson(n.stats.scan, out);
      break;
    case PlanNode::Kind::kValues:
      *out += ",\"rows\":" + std::to_string(n.values.size());
      break;
    case PlanNode::Kind::kHashJoin:
      *out += ",\"join_type\":" + JsonQuote(n.join_type == JoinType::kLeftOuter
                                                ? "left_outer"
                                                : "inner");
      *out += ",\"keys\":" + std::to_string(n.left_keys.size());
      break;
    case PlanNode::Kind::kMergeJoin:
      *out += ",\"keys\":" + std::to_string(n.left_keys.size());
      break;
    case PlanNode::Kind::kIndexJoin:
      *out += ",\"probe_table\":" + JsonQuote(n.index_table);
      *out += ",\"keys\":" + std::to_string(n.left_keys.size());
      AppendScanStatsJson(n.stats.scan, out);
      break;
    case PlanNode::Kind::kAggregate:
      *out += ",\"group_cols\":" + std::to_string(n.group_cols.size());
      *out += ",\"aggregates\":" + std::to_string(n.aggs.size());
      break;
    case PlanNode::Kind::kSort:
      *out += ",\"keys\":" + std::to_string(n.sort_keys.size());
      break;
    case PlanNode::Kind::kLimit:
      *out += ",\"limit\":" + std::to_string(n.limit);
      break;
    case PlanNode::Kind::kFilter:
    case PlanNode::Kind::kProject:
    case PlanNode::Kind::kCrossJoin:
    case PlanNode::Kind::kDistinct:
      break;
  }
  *out += ",\"rows_output\":" + std::to_string(n.stats.rows_output);
  if (!n.children.empty()) {
    *out += ",\"children\":[";
    for (size_t i = 0; i < n.children.size(); ++i) {
      if (i) *out += ",";
      NodeToJson(*n.children[i], out);
    }
    *out += "]";
  }
  *out += "}";
}

}  // namespace

std::string PlanToJson(const PlanNode& plan) {
  std::string out;
  NodeToJson(plan, &out);
  return out;
}

}  // namespace bih
