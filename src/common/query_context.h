#ifndef TPCBIH_COMMON_QUERY_CONTEXT_H_
#define TPCBIH_COMMON_QUERY_CONTEXT_H_

#include <atomic>
#include <chrono>
#include <cstdint>

#include "common/status.h"

namespace bih {

// Per-query deadline and cancellation token, checked cooperatively inside
// the engines' scan loops and the exec operators. One context serves exactly
// one query execution: the owning thread calls KeepGoing()/CheckNow() while
// it works; any other thread (client, watchdog) may call Cancel() at any
// time. Once a check fails, the verdict is sticky — every later check
// returns false and status() reports why.
//
// Cost model: KeepGoing() is called once per row. The cancellation flag is a
// relaxed atomic load every call; the (much more expensive) clock is only
// sampled every kClockCheckInterval calls, so a deadline is detected within
// that many rows or by the watchdog flipping the cancel flag, whichever
// comes first.
class QueryContext {
 public:
  using Clock = std::chrono::steady_clock;

  QueryContext() = default;
  explicit QueryContext(Clock::time_point deadline)
      : has_deadline_(true), deadline_(deadline) {}

  // Convenience: a context whose deadline is `budget` from now.
  static QueryContext WithTimeout(std::chrono::nanoseconds budget) {
    return QueryContext(Clock::now() + budget);
  }

  QueryContext(const QueryContext&) = delete;
  QueryContext& operator=(const QueryContext&) = delete;

  // Requests cancellation. Safe from any thread; the working thread observes
  // it at its next per-row check.
  void Cancel() { cancel_.store(true, std::memory_order_relaxed); }
  bool cancel_requested() const {
    return cancel_.load(std::memory_order_relaxed);
  }

  bool has_deadline() const { return has_deadline_; }
  Clock::time_point deadline() const { return deadline_; }

  // Per-row cooperative check; false once the query must stop. Only the
  // thread executing the query may call this.
  bool KeepGoing();

  // Forces a clock check now (used at operator boundaries and before
  // acquiring locks). Returns the sticky status.
  Status CheckNow();

  // kOk while running; kCancelled / kDeadlineExceeded once interrupted.
  Status status() const;

  static constexpr uint32_t kClockCheckInterval = 64;

 private:
  enum class Verdict : uint8_t { kRunning, kCancelled, kDeadlineExceeded };

  // Classifies an observed interruption: a cancel that arrives after the
  // deadline passed is reported as the deadline (the watchdog cancels
  // overdue queries, and "it ran out of time" is the truthful answer).
  void Fail(bool deadline_passed);

  std::atomic<bool> cancel_{false};
  bool has_deadline_ = false;
  Clock::time_point deadline_{};
  Verdict verdict_ = Verdict::kRunning;  // written by the query thread only
  uint32_t calls_since_clock_check_ = 0;
};

}  // namespace bih

#endif  // TPCBIH_COMMON_QUERY_CONTEXT_H_
