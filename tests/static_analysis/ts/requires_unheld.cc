// Negative-compile fixture: calling a REQUIRES(mu) function without holding
// mu MUST fail under -Werror=thread-safety.
#include "common/thread_annotations.h"

namespace {

bih::Mutex g_mu;
int g_value GUARDED_BY(g_mu) = 0;

void Touch() REQUIRES(g_mu) { ++g_value; }

}  // namespace

int main() {
  Touch();  // caller does not hold g_mu: -Wthread-safety error
  return 0;
}
