// Figure 7(b): the 22 TPC-H queries under *system-time* travel to the
// version just before the history evolution (i.e., the initial TPC-H
// data), as slowdown ratios against a non-temporal baseline holding that
// initial data.
//
// Expected shape (Section 5.4.2): overheads clearly higher than the
// application-time experiment of Fig. 7(a) — every table access must now
// reassemble history — with System D (no current/history split) showing
// the smallest RDBMS overhead and System B the largest.
#include <cmath>
#include <cstdio>

#include "bench_common.h"

namespace bih {
namespace bench {
namespace {

void Run() {
  SharedWorkload& w = SharedWorkload::Get();
  const WorkloadContext& ctx = w.ctx();
  auto baseline = LoadBaseline(ctx.initial);

  PrintHeader("Figure 7(b): TPC-H with system-time travel to version 0, "
              "slowdown vs non-temporal baseline");
  std::printf("%-5s", "Q");
  for (const std::string& l : AllEngineLetters()) {
    std::printf(" %12s", ("System" + l).c_str());
  }
  std::printf(" %12s\n", "base[ms]");

  std::map<std::string, double> logsum;
  for (int q = 1; q <= 22; ++q) {
    double base_ms = TimeMs(
        [&] { TpchQuery(q, *baseline, TemporalScanSpec::Current()); });
    std::printf("Q%-4d", q);
    for (const std::string& letter : AllEngineLetters()) {
      TemporalEngine& e = w.Engine(letter);
      double ms = TimeMs([&] {
        TpchQuery(q, e, TemporalScanSpec::SystemAsOf(ctx.sys_v0.micros()));
      });
      double ratio = base_ms > 0 ? ms / base_ms : 0.0;
      logsum[letter] += std::log(std::max(ratio, 1e-6));
      std::printf(" %12.2f", ratio);
    }
    std::printf(" %12.3f\n", base_ms);
  }
  std::printf("%-5s", "geo");
  for (const std::string& letter : AllEngineLetters()) {
    std::printf(" %12.2f", std::exp(logsum[letter] / 22.0));
  }
  std::printf(
      "\n\nShape check: every geometric mean exceeds its Fig. 7(a) "
      "counterpart; System B worst (history reconstruction join), System D "
      "best among the row stores (no partition split). Magnitudes are "
      "muted vs the paper for the planner reason noted in EXPERIMENTS.md.\n");
}

}  // namespace
}  // namespace bench
}  // namespace bih

int main() {
  bih::bench::Run();
  return 0;
}
