# Empty dependencies file for bih_catalog.
# This may be replaced when dependencies are built.
