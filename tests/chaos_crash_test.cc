// Deterministic crash-point chaos sweep (the checkpointing PR's headline
// property). A fixed operation sequence runs through a WAL-attached engine
// with periodic checkpoints while the fault injector kills the process
// model at a chosen crash point: the Nth commit fdatasync, the Nth
// checkpoint frame, the Nth segment rotation, or the checkpoint rename.
// After every injected crash the log+checkpoint pair is recovered into a
// fresh engine, whose full bitemporal dump must be byte-identical to SOME
// PREFIX of the attempted operation sequence — and at least the prefix the
// writer acknowledged as durable. Runs against all four architectures.
//
// Also covered here: recovery replays only log-since-checkpoint (bounded
// replay), a torn published checkpoint is ignored in favour of full log
// replay, and the session layer degrades to read-only (kUnavailable writes,
// live snapshot reads) when the WAL dies.
#include <chrono>
#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "durability/checkpoint.h"
#include "engine/recovery.h"
#include "server/session.h"
#include "temporal/clock.h"
#include "reference_model.h"

namespace bih {
namespace {

// One engine-neutral mutation of the driven sequence. The chaos sweep
// sticks to current-time DML: the crash surface under test is the
// durability machinery, not the sequenced planners (engine_fuzz_test and
// crash_recovery_test already sweep those).
struct ChaosStep {
  enum class Kind { kInsert, kUpdate, kDelete };
  Kind kind = Kind::kInsert;
  Row row;                              // kInsert
  int64_t id = 0;                       // kUpdate / kDelete
  std::vector<ColumnAssignment> set;    // kUpdate
};

// Deterministic sequence from a tiny LCG; ~half inserts, the rest updates
// and deletes of live keys.
std::vector<ChaosStep> MakeChaosSteps(uint64_t seed, int n) {
  uint64_t h = seed * 0x9e3779b97f4a7c15ULL + 1;
  auto next = [&h]() {
    h = h * 6364136223846793005ULL + 1442695040888963407ULL;
    return h >> 33;
  };
  std::vector<ChaosStep> steps;
  std::vector<int64_t> live;
  int64_t next_key = 1;
  for (int i = 0; i < n; ++i) {
    ChaosStep s;
    const uint64_t r = next() % 10;
    if (r < 5 || live.empty()) {
      const int64_t id = next_key++;
      const int64_t vb = static_cast<int64_t>(next() % 300);
      const int64_t ve = next() % 10 < 3
                             ? Period::kForever
                             : vb + 1 + static_cast<int64_t>(next() % 200);
      s.kind = ChaosStep::Kind::kInsert;
      s.row = Row{Value(id), Value(double(1 + next() % 1000)),
                  Value(next() % 2 == 0 ? "x" : "y"), Value(vb), Value(ve)};
      live.push_back(id);
    } else if (r < 8) {
      s.kind = ChaosStep::Kind::kUpdate;
      s.id = live[next() % live.size()];
      s.set = {{1, Value(double(1 + next() % 1000))}};
    } else {
      const size_t pick = next() % live.size();
      s.kind = ChaosStep::Kind::kDelete;
      s.id = live[pick];
      live.erase(live.begin() + static_cast<long>(pick));
    }
    steps.push_back(std::move(s));
  }
  return steps;
}

Status ApplyChaosStep(TemporalEngine& e, const ChaosStep& s) {
  switch (s.kind) {
    case ChaosStep::Kind::kInsert:
      return e.Insert("ITEM", s.row);
    case ChaosStep::Kind::kUpdate:
      return e.UpdateCurrent("ITEM", {Value(s.id)}, s.set);
    case ChaosStep::Kind::kDelete:
      return e.DeleteCurrent("ITEM", {Value(s.id)});
  }
  return Status::Internal("unreachable");
}

// Applies `s` to the reference model iff it would succeed; returns whether
// it mutates state (mirrors the engine's OK-vs-NotFound contract).
bool ApplyToModel(Model* m, const ChaosStep& s, int64_t ts) {
  switch (s.kind) {
    case ChaosStep::Kind::kInsert: {
      Row user = s.row;
      m->Insert(std::move(user), ts);
      return true;
    }
    case ChaosStep::Kind::kUpdate:
      return m->UpdateCurrent(s.id, s.set, ts);
    case ChaosStep::Kind::kDelete:
      return m->DeleteCurrent(s.id, ts);
  }
  return false;
}

std::vector<Row> DumpModel(const Model& m) {
  TemporalScanSpec all;
  all.system_time = TemporalSelector::All();
  all.app_time = TemporalSelector::All();
  return Canonical(m.Query(all, /*now=*/0, /*key=*/-1));
}

std::vector<Row> DumpEngine(TemporalEngine& e) {
  ScanRequest req;
  req.table = "ITEM";
  req.temporal.system_time = TemporalSelector::All();
  req.temporal.app_time = TemporalSelector::All();
  std::vector<Row> rows;
  e.Scan(req, [&](const Row& r) {
    rows.push_back(r);
    return true;
  });
  return Canonical(std::move(rows));
}

bool SameRows(const std::vector<Row>& a, const std::vector<Row>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].size() != b[i].size()) return false;
    for (size_t c = 0; c < a[i].size(); ++c) {
      if (a[i][c].Compare(b[i][c]) != 0) return false;
    }
  }
  return true;
}

std::string TmpWal(const std::string& tag) {
  return ::testing::TempDir() + "/chaos_" + tag + ".wal";
}

// One injected-crash scenario: drive `steps` with a checkpoint every
// `ckpt_every` ops until the injector kills the run (or the sequence ends).
struct ScenarioResult {
  // Canonical dump after each state-changing attempted op; [0] is the
  // empty table. The durable state after any crash must equal one of
  // these — that is the prefix-consistency contract.
  std::vector<std::vector<Row>> prefixes;
  size_t acked = 0;  // index of the last prefix the writer acknowledged
  bool crashed = false;
  uint64_t checkpoints_ok = 0;
  uint64_t wal_records = 0;  // records the writer accepted before the crash
};

ScenarioResult RunScenario(const std::string& letter,
                           const std::string& wal_path, FaultInjector* fi,
                           const std::vector<ChaosStep>& steps,
                           int ckpt_every) {
  ScenarioResult rr;
  auto engine = MakeEngine(letter);
  EXPECT_TRUE(engine->EnableWal(wal_path, fi).ok());
  Model model;
  rr.prefixes.push_back(DumpModel(model));

  Status st = engine->CreateTable(FuzzItemDef());
  if (!st.ok()) {
    rr.crashed = true;
    rr.wal_records = engine->wal()->records_written();
    return rr;
  }

  Checkpointer cp(wal_path, fi);
  CommitClock model_clock;
  int since_ckpt = 0;
  for (const ChaosStep& s : steps) {
    const int64_t ts = model_clock.NextCommit().micros();
    st = ApplyChaosStep(*engine, s);
    const bool mutated = ApplyToModel(&model, s, ts);
    if (mutated) rr.prefixes.push_back(DumpModel(model));
    if (st.ok()) {
      EXPECT_TRUE(mutated);
      rr.acked = rr.prefixes.size() - 1;
    } else if (st.code() == Status::Code::kIoError) {
      rr.crashed = true;
      break;
    } else {
      EXPECT_EQ(Status::Code::kNotFound, st.code()) << st.ToString();
      EXPECT_FALSE(mutated);
    }
    if (++since_ckpt >= ckpt_every) {
      since_ckpt = 0;
      CheckpointInfo info;
      Status ck = cp.Write(engine.get(), &info);
      if (!ck.ok()) {
        rr.crashed = true;
        break;
      }
      ++rr.checkpoints_ok;
    }
  }
  rr.wal_records = engine->wal()->records_written();
  return rr;
}

// Finds which prefix the recovered state equals; -1 if none.
int MatchPrefix(const ScenarioResult& rr, const std::vector<Row>& got) {
  for (size_t i = rr.prefixes.size(); i-- > 0;) {
    if (SameRows(rr.prefixes[i], got)) return static_cast<int>(i);
  }
  return -1;
}

class ChaosSweepTest : public ::testing::TestWithParam<std::string> {};

struct CrashPlan {
  const char* tag;
  FaultInjector (*make)(uint64_t);
  uint64_t n;
};

TEST_P(ChaosSweepTest, PrefixConsistentAtEveryCrashPoint) {
  const std::string letter = GetParam();
  const int kSteps = 60;
  const int kCkptEvery = 12;  // several checkpoints per run
  const std::vector<ChaosStep> steps = MakeChaosSteps(20260807, kSteps);

  // Crash points: commit-boundary syncs, segment rotations, checkpoint
  // frames, and the checkpoint's atomic rename — each swept at several
  // deterministic trigger indices. Syncs happen once per auto-commit and
  // once per rotation; rotations/renames once per checkpoint; checkpoint
  // frames accumulate ~3 per checkpoint (def + rows chunk + footer).
  const std::vector<CrashPlan> plans = {
      {"sync", &FaultInjector::FailSyncNth, 1},
      {"sync", &FaultInjector::FailSyncNth, 2},
      {"sync", &FaultInjector::FailSyncNth, 7},
      {"sync", &FaultInjector::FailSyncNth, 14},
      {"sync", &FaultInjector::FailSyncNth, 27},
      {"sync", &FaultInjector::FailSyncNth, 45},
      {"rotate", &FaultInjector::FailRotateNth, 1},
      {"rotate", &FaultInjector::FailRotateNth, 2},
      {"rotate", &FaultInjector::FailRotateNth, 4},
      {"ckpt", &FaultInjector::FailCheckpointNth, 1},
      {"ckpt", &FaultInjector::FailCheckpointNth, 2},
      {"ckpt", &FaultInjector::FailCheckpointNth, 3},
      {"ckpt", &FaultInjector::FailCheckpointNth, 5},
      {"ckpt", &FaultInjector::FailCheckpointNth, 8},
      {"rename", &FaultInjector::TornRenameNth, 1},
      {"rename", &FaultInjector::TornRenameNth, 2},
      {"rename", &FaultInjector::TornRenameNth, 4},
  };

  for (const CrashPlan& plan : plans) {
    const std::string tag =
        letter + "_" + plan.tag + "_" + std::to_string(plan.n);
    SCOPED_TRACE(tag);
    FaultInjector fi = plan.make(plan.n);
    const std::string wal_path = TmpWal(tag);
    ScenarioResult rr = RunScenario(letter, wal_path, &fi, steps, kCkptEvery);
    ASSERT_TRUE(rr.crashed) << "plan " << tag << " never triggered";
    ASSERT_TRUE(fi.triggered());

    std::unique_ptr<TemporalEngine> recovered;
    RecoveryReport report;
    Status st = RecoverEngine(letter, wal_path, &recovered, &report);
    ASSERT_TRUE(st.ok()) << st.ToString();

    // Prefix consistency: the recovered state is some prefix of the
    // attempted sequence, and never behind what was acknowledged durable.
    std::vector<Row> got = recovered->HasTable("ITEM")
                               ? DumpEngine(*recovered)
                               : std::vector<Row>();
    const int matched = MatchPrefix(rr, got);
    ASSERT_GE(matched, 0) << "recovered state matches no prefix; "
                          << report.ToString();
    EXPECT_GE(static_cast<size_t>(matched), rr.acked) << report.ToString();

    // Bounded replay: once a checkpoint survived, recovery must load it
    // and replay strictly fewer records than the writer ever logged.
    if (rr.checkpoints_ok > 0) {
      EXPECT_TRUE(report.checkpoint_loaded) << report.ToString();
      EXPECT_GE(report.checkpoint_segments, rr.checkpoints_ok);
      EXPECT_LT(report.records_total, rr.wal_records) << report.ToString();
    }
  }
}

// No-fault baseline: several checkpoints, clean shutdown, recovery replays
// only the records logged after the last checkpoint and reproduces the
// exact final state.
TEST_P(ChaosSweepTest, ReplayIsBoundedByLastCheckpoint) {
  const std::string letter = GetParam();
  const std::string wal_path = TmpWal(letter + "_bounded");
  const std::vector<ChaosStep> steps = MakeChaosSteps(7, 40);

  Model model;
  CommitClock model_clock;
  uint64_t records_after_ckpt = 0;
  {
    auto engine = MakeEngine(letter);
    ASSERT_TRUE(engine->EnableWal(wal_path).ok());
    ASSERT_TRUE(engine->CreateTable(FuzzItemDef()).ok());
    Checkpointer cp(wal_path);
    for (size_t i = 0; i < steps.size(); ++i) {
      const int64_t ts = model_clock.NextCommit().micros();
      Status st = ApplyChaosStep(*engine, steps[i]);
      const bool mutated = ApplyToModel(&model, steps[i], ts);
      ASSERT_EQ(st.ok(), mutated) << st.ToString();
      if (st.ok()) ++records_after_ckpt;
      if (i + 1 == 30) {
        CheckpointInfo info;
        ASSERT_TRUE(cp.Write(engine.get(), &info).ok());
        EXPECT_EQ(1u, info.segments_covered);
        EXPECT_EQ(1u, info.segments_removed);
        EXPECT_GT(info.rows, 0u);
        records_after_ckpt = 0;
      }
    }
    // The checkpoint truncated everything it covers: only the tail
    // segment remains on disk.
    std::vector<WalSegment> segs = ListWalSegments(wal_path);
    ASSERT_EQ(1u, segs.size());
    EXPECT_EQ(2u, segs[0].index);
  }

  std::unique_ptr<TemporalEngine> recovered;
  RecoveryReport report;
  ASSERT_TRUE(RecoverEngine(letter, wal_path, &recovered, &report).ok());
  EXPECT_TRUE(report.checkpoint_loaded) << report.ToString();
  EXPECT_EQ(1u, report.checkpoint_segments);
  EXPECT_EQ(1u, report.segments_scanned);
  EXPECT_EQ(records_after_ckpt, report.records_total) << report.ToString();
  EXPECT_FALSE(report.tail_dropped);
  EXPECT_TRUE(SameRows(DumpModel(model), DumpEngine(*recovered)));
  // The JSON rendering carries the same accounting (the CI artifact).
  EXPECT_NE(std::string::npos,
            report.ToJson().find("\"checkpoint_loaded\":true"));
}

// A published checkpoint that later turns out unreadable (bit rot, torn
// device write that fsync lied about) is ignored, not fatal: recovery
// falls back to the full segment chain, which in this scenario still
// exists because the checkpoint was crafted by hand.
TEST_P(ChaosSweepTest, TornPublishedCheckpointIsIgnored) {
  const std::string letter = GetParam();
  const std::string wal_path = TmpWal(letter + "_tornckpt");
  const std::vector<ChaosStep> steps = MakeChaosSteps(11, 24);

  Model model;
  CommitClock model_clock;
  {
    auto engine = MakeEngine(letter);
    ASSERT_TRUE(engine->EnableWal(wal_path).ok());
    ASSERT_TRUE(engine->CreateTable(FuzzItemDef()).ok());
    for (size_t i = 0; i < steps.size(); ++i) {
      const int64_t ts = model_clock.NextCommit().micros();
      Status st = ApplyChaosStep(*engine, steps[i]);
      ASSERT_EQ(st.ok(), ApplyToModel(&model, steps[i], ts));
      if (i + 1 == 12) {
        // A bare rotation (no checkpoint): two segments, nothing removed.
        ASSERT_TRUE(engine->wal()->Rotate().ok());
      }
    }
  }
  // Handcraft a torn checkpoint: valid magic, garbage half-frame.
  const std::string ckpt_path = Checkpointer::CheckpointPath(wal_path);
  {
    std::FILE* f = std::fopen(ckpt_path.c_str(), "wb");
    ASSERT_NE(nullptr, f);
    const std::string magic = WalFileMagic();
    ASSERT_EQ(magic.size(), std::fwrite(magic.data(), 1, magic.size(), f));
    ASSERT_EQ(4u, std::fwrite("oops", 1, 4, f));
    std::fclose(f);
  }

  std::unique_ptr<TemporalEngine> recovered;
  RecoveryReport report;
  ASSERT_TRUE(RecoverEngine(letter, wal_path, &recovered, &report).ok());
  EXPECT_FALSE(report.checkpoint_loaded);
  EXPECT_FALSE(report.checkpoint_ignored_reason.empty()) << report.ToString();
  EXPECT_EQ(2u, report.segments_scanned);
  EXPECT_TRUE(SameRows(DumpModel(model), DumpEngine(*recovered)));
}

// When the WAL dies mid-service the session manager flips to read-only:
// writes get kUnavailable with a retry hint, snapshot reads keep serving.
TEST_P(ChaosSweepTest, DeadWalDegradesSessionToReadOnly) {
  const std::string letter = GetParam();
  // Sync 1 is the CREATE TABLE flush; the injected failure lands on the
  // 5th commit sync = the 4th insert.
  FaultInjector fi = FaultInjector::FailSyncNth(5);
  auto engine = MakeEngine(letter);
  ASSERT_TRUE(engine->EnableWal(TmpWal(letter + "_degrade"), &fi).ok());

  SessionConfig cfg;
  cfg.watchdog_period = std::chrono::milliseconds(0);
  SessionManager mgr(engine.get(), cfg);
  ASSERT_TRUE(mgr.Write([](TemporalEngine& e) {
                   return e.CreateTable(FuzzItemDef());
                 }).ok());

  int accepted = 0;
  Status death = Status::OK();
  for (int i = 1; i <= 10; ++i) {
    Status st = mgr.Insert("ITEM", Row{Value(int64_t(i)), Value(1.0),
                                       Value("x"), Value(int64_t(0)),
                                       Value(Period::kForever)});
    if (!st.ok()) {
      death = st;
      break;
    }
    ++accepted;
  }
  // The 4th insert hits the injected sync failure after retries exhaust.
  ASSERT_EQ(Status::Code::kIoError, death.code()) << death.ToString();
  ASSERT_EQ(3, accepted);
  ASSERT_TRUE(mgr.read_only());

  // Writes are now rejected with the retry-hint-carrying kUnavailable…
  Status rejected = mgr.Insert("ITEM", Row{Value(int64_t(99)), Value(1.0),
                                           Value("x"), Value(int64_t(0)),
                                           Value(Period::kForever)});
  EXPECT_EQ(Status::Code::kUnavailable, rejected.code());
  EXPECT_FALSE(rejected.retry_hint().empty()) << rejected.ToString();

  // …while reads keep serving the pinned snapshot. Every insert the engine
  // applied in memory (the acknowledged three plus the one whose log write
  // died) is visible; what matters is that reads still succeed at all.
  std::vector<Row> rows;
  ScanRequest req;
  req.table = "ITEM";
  req.temporal.system_time = TemporalSelector::All();
  req.temporal.app_time = TemporalSelector::All();
  ASSERT_TRUE(mgr.Read(req, nullptr, &rows).ok());
  EXPECT_GE(rows.size(), static_cast<size_t>(accepted));

  SessionManager::ServerStats stats = mgr.GetStats();
  EXPECT_EQ(1u, stats.writes_unavailable);
  EXPECT_GE(stats.reads_ok, 1u);
}

// The revive path: a session degraded by a dead WAL comes back to
// writable WITHOUT a process restart. RunCheckpoint opens a fresh writer
// at the segment after the dead one, folds the whole in-memory state into
// a checkpoint covering every earlier segment (superseding whatever
// suffix the dead segment lost), and only then re-enables writes. The
// combined state — pre-death writes, revive checkpoint, post-revive
// writes — must recover from disk bit-for-bit.
TEST_P(ChaosSweepTest, CheckpointRevivesDegradedSessionWithoutRestart) {
  const std::string letter = GetParam();
  const std::string wal_path = TmpWal(letter + "_revive");
  FaultInjector fi = FaultInjector::FailSyncNth(5);
  auto engine = MakeEngine(letter);
  ASSERT_TRUE(engine->EnableWal(wal_path, &fi).ok());

  SessionConfig cfg;
  cfg.watchdog_period = std::chrono::milliseconds(0);
  SessionManager mgr(engine.get(), cfg);
  ASSERT_TRUE(mgr.Write([](TemporalEngine& e) {
                   return e.CreateTable(FuzzItemDef());
                 }).ok());
  for (int i = 1; i <= 10; ++i) {
    Status st = mgr.Insert("ITEM", Row{Value(int64_t(i)), Value(1.0),
                                       Value("x"), Value(int64_t(0)),
                                       Value(Period::kForever)});
    if (!st.ok()) break;
  }
  ASSERT_TRUE(mgr.read_only());

  // RunCheckpoint IS the revive: fresh writer + superseding checkpoint.
  Checkpointer cp(wal_path);
  CheckpointInfo info;
  ASSERT_TRUE(mgr.RunCheckpoint(&cp, &info).ok());
  EXPECT_FALSE(mgr.read_only());

  // Writes work again, on the same process, same manager.
  for (int i = 50; i < 53; ++i) {
    ASSERT_TRUE(mgr.Insert("ITEM", Row{Value(int64_t(i)), Value(2.0),
                                       Value("y"), Value(int64_t(0)),
                                       Value(Period::kForever)})
                    .ok());
  }
  // Recovery from the on-disk pair lands exactly on what the live engine
  // holds: the checkpoint covered the in-memory superset, the fresh
  // segment replays the post-revive writes, the dead suffix is gone.
  std::unique_ptr<TemporalEngine> recovered;
  RecoveryReport report;
  ASSERT_TRUE(RecoverEngine(letter, wal_path, &recovered, &report).ok());
  EXPECT_TRUE(report.checkpoint_loaded) << report.ToString();
  EXPECT_TRUE(SameRows(DumpEngine(mgr.engine()), DumpEngine(*recovered)));
}

// Checkpointing through the session layer: RunCheckpoint holds the writer
// lock, so the snapshot is consistent; afterwards writes continue and
// recovery reproduces the combined state.
TEST_P(ChaosSweepTest, SessionCheckpointThenRecover) {
  const std::string letter = GetParam();
  const std::string wal_path = TmpWal(letter + "_sessionckpt");
  auto engine = MakeEngine(letter);
  ASSERT_TRUE(engine->EnableWal(wal_path).ok());

  SessionConfig cfg;
  cfg.watchdog_period = std::chrono::milliseconds(0);
  SessionManager mgr(engine.get(), cfg);
  ASSERT_TRUE(mgr.Write([](TemporalEngine& e) {
                   return e.CreateTable(FuzzItemDef());
                 }).ok());
  for (int i = 1; i <= 6; ++i) {
    ASSERT_TRUE(mgr.Insert("ITEM", Row{Value(int64_t(i)), Value(double(i)),
                                       Value("a"), Value(int64_t(0)),
                                       Value(Period::kForever)})
                    .ok());
  }
  Checkpointer cp(wal_path);
  CheckpointInfo info;
  ASSERT_TRUE(mgr.RunCheckpoint(&cp, &info).ok());
  EXPECT_FALSE(mgr.read_only());
  for (int i = 7; i <= 9; ++i) {
    ASSERT_TRUE(mgr.Insert("ITEM", Row{Value(int64_t(i)), Value(double(i)),
                                       Value("b"), Value(int64_t(0)),
                                       Value(Period::kForever)})
                    .ok());
  }

  std::unique_ptr<TemporalEngine> recovered;
  RecoveryReport report;
  ASSERT_TRUE(RecoverEngine(letter, wal_path, &recovered, &report).ok());
  EXPECT_TRUE(report.checkpoint_loaded);
  EXPECT_EQ(3u, report.records_total) << report.ToString();
  EXPECT_TRUE(SameRows(DumpEngine(mgr.engine()), DumpEngine(*recovered)));
}

// --- Torn-group-commit sweep ------------------------------------------
//
// The group-commit write path adds new places to die: after a batch's
// records are staged (fflushed) but before the batched fdatasync, at the
// batched fdatasync itself, and torn mid-record inside a group's frames.
// Each transaction here is a Begin/Commit batch of three DMLs pushed
// through the session's group path, so a crash must lose or keep whole
// transactions — never a partial batch.

// Deterministic batched scripts: every batch is two inserts plus one
// update of a key committed in an EARLIER batch (so every statement in a
// batch succeeds, and no key is touched twice at one commit timestamp).
std::vector<std::vector<ChaosStep>> MakeGroupBatches(uint64_t seed,
                                                     int nbatches) {
  uint64_t h = seed * 0x9e3779b97f4a7c15ULL + 1;
  auto next = [&h]() {
    h = h * 6364136223846793005ULL + 1442695040888963407ULL;
    return h >> 33;
  };
  std::vector<std::vector<ChaosStep>> batches;
  std::vector<int64_t> committed;
  int64_t next_key = 1;
  for (int b = 0; b < nbatches; ++b) {
    std::vector<ChaosStep> batch;
    std::vector<int64_t> fresh;
    for (int j = 0; j < 2; ++j) {
      ChaosStep s;
      const int64_t id = next_key++;
      const int64_t vb = static_cast<int64_t>(next() % 300);
      s.kind = ChaosStep::Kind::kInsert;
      s.row = Row{Value(id), Value(double(1 + next() % 1000)),
                  Value(next() % 2 == 0 ? "x" : "y"), Value(vb),
                  Value(Period::kForever)};
      fresh.push_back(id);
      batch.push_back(std::move(s));
    }
    ChaosStep third;
    if (committed.empty()) {
      const int64_t id = next_key++;
      third.kind = ChaosStep::Kind::kInsert;
      third.row = Row{Value(id), Value(double(1 + next() % 1000)), Value("z"),
                      Value(int64_t(0)), Value(Period::kForever)};
      fresh.push_back(id);
    } else {
      third.kind = ChaosStep::Kind::kUpdate;
      third.id = committed[next() % committed.size()];
      third.set = {{1, Value(double(1 + next() % 1000))}};
    }
    batch.push_back(std::move(third));
    batches.push_back(std::move(batch));
    committed.insert(committed.end(), fresh.begin(), fresh.end());
  }
  return batches;
}

struct GroupRun {
  // Canonical model dump after each committed batch; [0] is empty. The
  // extra entry pushed for the dying batch covers the case where its
  // records reached the OS file before the injected sync failure.
  std::vector<std::vector<Row>> prefixes;
  size_t acked = 0;  // last prefix whose batch was acknowledged durable
  bool crashed = false;
};

GroupRun RunGroupScenario(const std::string& letter,
                          const std::string& wal_path, FaultInjector* fi,
                          const std::vector<std::vector<ChaosStep>>& batches) {
  GroupRun rr;
  Model model;
  rr.prefixes.push_back(DumpModel(model));
  auto engine = MakeEngine(letter);
  EXPECT_TRUE(engine->EnableWal(wal_path, fi).ok());
  Status st = engine->CreateTable(FuzzItemDef());
  if (!st.ok()) {
    rr.crashed = true;
    return rr;
  }
  SessionConfig cfg;
  cfg.watchdog_period = std::chrono::milliseconds(0);
  cfg.write_shards = 4;  // group_commit defaults on
  SessionManager mgr(engine.get(), cfg);
  CommitClock model_clock;
  for (const std::vector<ChaosStep>& batch : batches) {
    const int64_t ts = model_clock.NextCommit().micros();
    Status ws = mgr.Write([&](TemporalEngine& e) {
      e.Begin();
      for (const ChaosStep& s : batch) {
        Status a = ApplyChaosStep(e, s);
        if (!a.ok()) return a;
      }
      return e.Commit();
    });
    if (ws.ok()) {
      for (const ChaosStep& s : batch) ApplyToModel(&model, s, ts);
      rr.prefixes.push_back(DumpModel(model));
      rr.acked = rr.prefixes.size() - 1;
      continue;
    }
    EXPECT_TRUE(ws.code() == Status::Code::kIoError ||
                ws.code() == Status::Code::kUnavailable)
        << ws.ToString();
    rr.crashed = true;
    if (ws.code() == Status::Code::kIoError) {
      // The batch committed in memory and its records may have reached the
      // OS file before the device sync was killed; recovery is allowed to
      // surface it — whole, or not at all.
      for (const ChaosStep& s : batch) ApplyToModel(&model, s, ts);
      rr.prefixes.push_back(DumpModel(model));
    }
    break;
  }
  return rr;
}

int MatchGroupPrefix(const GroupRun& rr, const std::vector<Row>& got) {
  for (size_t i = rr.prefixes.size(); i-- > 0;) {
    if (SameRows(rr.prefixes[i], got)) return static_cast<int>(i);
  }
  return -1;
}

TEST_P(ChaosSweepTest, TornGroupCommitRecoversWholeTransactionsOnly) {
  const std::string letter = GetParam();
  const int kBatches = 30;
  const std::vector<std::vector<ChaosStep>> batches =
      MakeGroupBatches(20260808, kBatches);

  struct GroupPlan {
    const char* tag;
    FaultInjector fi;
  };
  // Each batch costs one group flush and one sync (plus the DDL's sync
  // before the session exists); each batch appends four records (three
  // statements + the commit marker) after the DDL's one.
  const std::vector<GroupPlan> plans = {
      // Before the batched fsync: staged, flushed, never synced.
      {"group", FaultInjector::FailGroupFlushNth(1)},
      {"group", FaultInjector::FailGroupFlushNth(2)},
      {"group", FaultInjector::FailGroupFlushNth(7)},
      {"group", FaultInjector::FailGroupFlushNth(19)},
      // At the batched fsync itself.
      {"sync", FaultInjector::FailSyncNth(2)},
      {"sync", FaultInjector::FailSyncNth(3)},
      {"sync", FaultInjector::FailSyncNth(11)},
      {"sync", FaultInjector::FailSyncNth(25)},
      // Torn mid-record inside a group's frames: the batch's commit marker
      // never lands, so recovery must drop the whole transaction.
      {"torn", FaultInjector::TornNth(3, 0)},
      {"torn", FaultInjector::TornNth(8, 5)},
      {"torn", FaultInjector::TornNth(14, 9)},
      {"torn", FaultInjector::TornNth(27, 13)},
      {"torn", FaultInjector::TornNth(61, 7)},
  };

  for (size_t p = 0; p < plans.size(); ++p) {
    const std::string tag = letter + "_g" + plans[p].tag + std::to_string(p);
    SCOPED_TRACE(tag);
    FaultInjector fi = plans[p].fi;
    const std::string wal_path = TmpWal(tag);
    GroupRun rr = RunGroupScenario(letter, wal_path, &fi, batches);
    ASSERT_TRUE(rr.crashed) << "plan never triggered";
    ASSERT_TRUE(fi.triggered());

    std::unique_ptr<TemporalEngine> recovered;
    RecoveryReport report;
    Status st = RecoverEngine(letter, wal_path, &recovered, &report);
    ASSERT_TRUE(st.ok()) << st.ToString();
    std::vector<Row> got = recovered->HasTable("ITEM")
                               ? DumpEngine(*recovered)
                               : std::vector<Row>();
    const int matched = MatchGroupPrefix(rr, got);
    // Whole transactions only (any matched prefix is batch-aligned), and
    // never behind what the session acknowledged durable.
    ASSERT_GE(matched, 0) << "recovered state is not a per-transaction "
                             "prefix; "
                          << report.ToString();
    EXPECT_GE(static_cast<size_t>(matched), rr.acked) << report.ToString();
  }
}

// Concurrent flavour: four writers push disjoint-key transactions through
// the sharded group path while the injector kills a group mid-flight. The
// interleaving is nondeterministic, so the assertion is the atomicity
// contract itself: after recovery every three-row transaction is present
// in full or absent in full, and every acknowledged one is present.
TEST_P(ChaosSweepTest, ConcurrentGroupCrashLeavesNoPartialTransaction) {
  const std::string letter = GetParam();
  constexpr int kWriters = 4;
  constexpr int kBatchesEach = 40;
  constexpr int kRowsPerBatch = 3;

  for (uint64_t group_n : {3u, 9u, 21u}) {
    const std::string tag =
        letter + "_cgc" + std::to_string(group_n);
    SCOPED_TRACE(tag);
    FaultInjector fi = FaultInjector::FailGroupFlushNth(group_n);
    const std::string wal_path = TmpWal(tag);
    std::vector<std::vector<int>> acked(kWriters);

    {
      auto engine = MakeEngine(letter);
      ASSERT_TRUE(engine->EnableWal(wal_path, &fi).ok());
      ASSERT_TRUE(engine->CreateTable(FuzzItemDef()).ok());
      SessionConfig cfg;
      cfg.watchdog_period = std::chrono::milliseconds(0);
      cfg.write_shards = 8;
      SessionManager mgr(engine.get(), cfg);

      std::vector<std::thread> writers;
      for (int t = 0; t < kWriters; ++t) {
        writers.emplace_back([&, t] {
          for (int b = 0; b < kBatchesEach; ++b) {
            // Keys encode (writer, batch, row): batch = id / 10.
            const int64_t base =
                1'000'000 * (t + 1) + 10 * static_cast<int64_t>(b);
            Status ws = mgr.WriteKeyed(
                "ITEM", {Value(base)}, [&](TemporalEngine& e) {
                  e.Begin();
                  for (int j = 0; j < kRowsPerBatch; ++j) {
                    Status a = e.Insert(
                        "ITEM",
                        Row{Value(base + j), Value(double(b + 1)),
                            Value(t % 2 == 0 ? "x" : "y"), Value(int64_t(0)),
                            Value(Period::kForever)});
                    if (!a.ok()) return a;
                  }
                  return e.Commit();
                });
            if (ws.ok()) {
              acked[static_cast<size_t>(t)].push_back(b);
            } else {
              // The group died (kIoError for the in-flight batch,
              // kUnavailable once degraded): no later batch can commit.
              break;
            }
          }
        });
      }
      for (std::thread& w : writers) w.join();
      ASSERT_TRUE(fi.triggered()) << "plan never triggered";
      ASSERT_TRUE(mgr.read_only());
    }

    std::unique_ptr<TemporalEngine> recovered;
    RecoveryReport report;
    ASSERT_TRUE(RecoverEngine(letter, wal_path, &recovered, &report).ok());
    // Tally recovered rows per (writer, batch) transaction.
    std::vector<Row> rows = DumpEngine(*recovered);
    std::map<int64_t, int> per_batch;
    for (const Row& r : rows) {
      const int64_t id = r[0].AsInt();
      per_batch[id / 10] += 1;
    }
    for (const auto& [batch, count] : per_batch) {
      EXPECT_EQ(kRowsPerBatch, count)
          << "torn transaction " << batch << ": " << count << " of "
          << kRowsPerBatch << " rows survived";
    }
    for (int t = 0; t < kWriters; ++t) {
      for (int b : acked[static_cast<size_t>(t)]) {
        const int64_t key = (1'000'000 * (t + 1) + 10 * b) / 10;
        EXPECT_EQ(kRowsPerBatch, per_batch[key])
            << "acknowledged transaction lost: writer " << t << " batch "
            << b;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllEngines, ChaosSweepTest,
                         ::testing::Values("A", "B", "C", "D"));

}  // namespace
}  // namespace bih
