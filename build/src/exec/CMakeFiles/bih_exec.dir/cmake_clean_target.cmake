file(REMOVE_RECURSE
  "libbih_exec.a"
)
