#ifndef TPCBIH_TEMPORAL_TIMELINE_INDEX_H_
#define TPCBIH_TEMPORAL_TIMELINE_INDEX_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "common/period.h"
#include "common/status.h"

namespace bih {

// Timeline Index (Kaufmann et al., SIGMOD 2013) — the unified temporal
// index the paper's conclusion finds missing from every tested system.
//
// The index stores the version history of a table as a single sorted
// *event list* (activation/invalidation per version) plus periodic
// *checkpoints* holding the complete set of visible versions. Time travel
// reconstructs a snapshot by replaying at most `checkpoint_interval`
// events on top of the nearest checkpoint; temporal aggregation streams
// the event list once.
//
// Build once over an immutable history (Add in any order, then Finalize);
// the benchmark uses it as an ablation: "what would System C gain from a
// native temporal index".
class TimelineIndex {
 public:
  explicit TimelineIndex(size_t checkpoint_interval = 1024)
      : checkpoint_interval_(checkpoint_interval) {}

  // Registers a version and its visibility period. Version ids are caller
  // assigned; the index sizes its bitmaps to the maximum id seen.
  void Add(uint32_t version_id, const Period& period);

  // Sorts events and builds checkpoints. Add() after Finalize() aborts.
  void Finalize();

  bool finalized() const { return finalized_; }
  size_t event_count() const { return events_.size(); }
  size_t checkpoint_count() const { return checkpoints_.size(); }
  size_t version_count() const { return static_cast<size_t>(max_id_) + 1; }

  // Visits every version visible at time t (in id order). The index must
  // be finalized. fn returning false stops the visit.
  void VisitActiveAt(int64_t t, const std::function<bool(uint32_t)>& fn) const;

  // Streams maximal intervals with a constant active set: fn receives the
  // interval plus the versions activated and deactivated at its start.
  // Aggregations maintain running state from the deltas — one pass over
  // the history, no joins (contrast with the SQL formulation of R3).
  struct Delta {
    Period interval;
    const std::vector<uint32_t>* activated;
    const std::vector<uint32_t>* deactivated;
  };
  void SweepIntervals(const std::function<bool(const Delta&)>& fn) const;

 private:
  struct Event {
    int64_t at;
    uint32_t version;
    bool open;  // activation vs invalidation
  };
  struct Checkpoint {
    int64_t at;          // time of the event this checkpoint precedes
    size_t event_index;  // events [0, event_index) are applied
    std::vector<uint64_t> bits;
  };

  void SetBit(std::vector<uint64_t>* bits, uint32_t id, bool on) const {
    if (on) {
      (*bits)[id >> 6] |= uint64_t{1} << (id & 63);
    } else {
      (*bits)[id >> 6] &= ~(uint64_t{1} << (id & 63));
    }
  }

  size_t checkpoint_interval_;
  bool finalized_ = false;
  uint32_t max_id_ = 0;
  std::vector<Event> events_;
  std::vector<Checkpoint> checkpoints_;
};

}  // namespace bih

#endif  // TPCBIH_TEMPORAL_TIMELINE_INDEX_H_
