file(REMOVE_RECURSE
  "libbih_storage.a"
)
