#ifndef TPCBIH_COMMON_CHRONO_H_
#define TPCBIH_COMMON_CHRONO_H_

#include <cstdint>
#include <string>

namespace bih {

// Calendar date stored as days since 1970-01-01 (proleptic Gregorian).
// TPC-H dates fall in [1992-01-01, 1998-12-31]; application-time periods in
// the benchmark are date-granular, matching PERIOD(DATE) columns.
class Date {
 public:
  Date() : days_(0) {}
  explicit Date(int32_t days_since_epoch) : days_(days_since_epoch) {}

  static Date FromYMD(int year, int month, int day);

  int32_t days() const { return days_; }
  void ToYMD(int* year, int* month, int* day) const;

  Date AddDays(int32_t n) const { return Date(days_ + n); }
  int32_t DaysUntil(Date other) const { return other.days_ - days_; }

  // "YYYY-MM-DD".
  std::string ToString() const;
  // Parses "YYYY-MM-DD"; returns false on malformed input.
  static bool Parse(const std::string& s, Date* out);

  friend bool operator==(Date a, Date b) { return a.days_ == b.days_; }
  friend auto operator<=>(Date a, Date b) { return a.days_ <=> b.days_; }

 private:
  int32_t days_;
};

// Transaction (system) time: microseconds since 1970-01-01 00:00:00 UTC.
// System time in the engines is assigned from a logical commit clock, so
// the absolute anchor only matters for formatting.
class Timestamp {
 public:
  Timestamp() : micros_(0) {}
  explicit Timestamp(int64_t micros_since_epoch) : micros_(micros_since_epoch) {}

  static Timestamp FromDate(Date d) {
    return Timestamp(int64_t{d.days()} * kMicrosPerDay);
  }

  int64_t micros() const { return micros_; }
  Date ToDate() const { return Date(static_cast<int32_t>(micros_ / kMicrosPerDay)); }

  Timestamp AddMicros(int64_t n) const { return Timestamp(micros_ + n); }

  // "YYYY-MM-DD hh:mm:ss.uuuuuu".
  std::string ToString() const;

  friend bool operator==(Timestamp a, Timestamp b) { return a.micros_ == b.micros_; }
  friend auto operator<=>(Timestamp a, Timestamp b) { return a.micros_ <=> b.micros_; }

  static constexpr int64_t kMicrosPerSecond = 1000000;
  static constexpr int64_t kMicrosPerDay = 86400LL * kMicrosPerSecond;

 private:
  int64_t micros_;
};

}  // namespace bih

#endif  // TPCBIH_COMMON_CHRONO_H_
