# Empty dependencies file for bih_common.
# This may be replaced when dependencies are built.
