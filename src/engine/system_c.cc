#include "engine/system_c.h"

#include <algorithm>

namespace bih {

namespace {

Schema StoredSchema(const TableDef& def) {
  // The hidden system-time columns; exposed in the scan schema at the same
  // positions other engines expose SYS_TIME_START/SYS_TIME_END.
  return def.schema.Extend({{"VALID_FROM", ColumnType::kTimestamp},
                            {"VALID_TO", ColumnType::kTimestamp}});
}

}  // namespace

SystemCEngine::Table* SystemCEngine::Find(const std::string& name) {
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : &it->second;
}

const SystemCEngine::Table* SystemCEngine::Find(const std::string& name) const {
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : &it->second;
}

Status SystemCEngine::DoCreateTable(const TableDef& def) {
  if (tables_.count(def.name)) {
    return Status::AlreadyExists("table " + def.name);
  }
  tables_.emplace(def.name, Table(def, StoredSchema(def)));
  return Status::OK();
}

Status SystemCEngine::CreateIndex(const IndexSpec& spec) {
  Table* t = Find(spec.table);
  if (t == nullptr) return Status::NotFound("table " + spec.table);
  if (spec.type == IndexType::kRTree) {
    return Status::Unimplemented("System C supports only B-tree indexes");
  }
  // Accepted, never consulted: the scan-based executor gains nothing from
  // secondary B-trees (Section 5.3.2: "System C does not benefit at all
  // from the additional B-Tree index").
  t->ignored_indexes.push_back(spec.name);
  return Status::OK();
}

Status SystemCEngine::DropIndexes(const std::string& table) {
  Table* t = Find(table);
  if (t == nullptr) return Status::NotFound("table " + table);
  t->ignored_indexes.clear();
  return Status::OK();
}

const TableDef& SystemCEngine::GetTableDef(const std::string& table) const {
  const Table* t = Find(table);
  BIH_CHECK_MSG(t != nullptr, "no table " + table);
  return t->def;
}

Schema SystemCEngine::ScanSchema(const std::string& table) const {
  const Table* t = Find(table);
  BIH_CHECK_MSG(t != nullptr, "no table " + table);
  return t->stored_schema;
}

IndexKey SystemCEngine::KeyOf(const Table& t, const Row& row) const {
  IndexKey key;
  key.reserve(t.def.primary_key.size());
  for (int c : t.def.primary_key) key.push_back(row[static_cast<size_t>(c)]);
  return key;
}

SystemCEngine::Loc SystemCEngine::AppendVersion(Table* t, Row user_row,
                                                Timestamp ts) {
  user_row.push_back(Value(ts));
  user_row.push_back(Value(Period::kForever));
  RowId rid = t->delta.Append(user_row);
  Loc loc{Part::kDelta, rid};
  t->current_by_key[KeyOf(*t, user_row)].push_back(loc);
  return loc;
}

void SystemCEngine::InvalidateVersion(Table* t, const Loc& loc, Timestamp ts) {
  ColumnTable* part = PartOf(t, loc.part);
  const int vt_col = t->stored_schema.num_columns() - 1;
  const int vf_col = vt_col - 1;
  if (part->Get(loc.rid, vf_col).AsInt() == ts.micros()) {
    // Opened by the same transaction: physically drop instead of keeping a
    // never-visible version.
    part->Delete(loc.rid);
  } else {
    part->Set(loc.rid, vt_col, Value(ts));
  }
  IndexKey key;
  for (int c : t->def.primary_key) key.push_back(part->Get(loc.rid, c));
  auto it = t->current_by_key.find(key);
  BIH_CHECK(it != t->current_by_key.end());
  auto& locs = it->second;
  locs.erase(std::remove_if(locs.begin(), locs.end(),
                            [&](const Loc& l) {
                              return l.part == loc.part && l.rid == loc.rid;
                            }),
             locs.end());
  if (locs.empty()) t->current_by_key.erase(it);
}

void SystemCEngine::MaybeMerge(Table* t) {
  if (t->delta.SlotCount() >= kMergeThreshold) MergeTable(t);
}

void SystemCEngine::MergeTable(Table* t) {
  const int vt_col = t->stored_schema.num_columns() - 1;
  // Move delta rows: visible versions to main, invalidated ones straight to
  // history. Row ids change; patch the key map as we go.
  t->delta.Scan([&](RowId old_rid, const Row& row) {
    const Value& vt = row[static_cast<size_t>(vt_col)];
    const bool open = !vt.is_null() && vt.AsInt() == Period::kForever;
    if (open) {
      RowId new_rid = t->main.Append(row);
      IndexKey key = KeyOf(*t, row);
      auto it = t->current_by_key.find(key);
      BIH_CHECK(it != t->current_by_key.end());
      for (Loc& l : it->second) {
        if (l.part == Part::kDelta && l.rid == old_rid) {
          l.part = Part::kMain;
          l.rid = new_rid;
          break;
        }
      }
    } else {
      t->history.Append(row);
    }
    return true;
  });
  t->delta.Clear();
  // Relocate main rows invalidated since the last merge.
  const size_t main_size = t->main.SlotCount();
  for (RowId rid = 0; rid < main_size; ++rid) {
    if (!t->main.IsLive(rid)) continue;
    Value vt = t->main.Get(rid, vt_col);
    if (!vt.is_null() && vt.AsInt() != Period::kForever) {
      t->history.Append(t->main.GetRow(rid));
      t->main.Delete(rid);
    }
  }
}

void SystemCEngine::Maintain() {
  for (auto& [name, t] : tables_) MergeTable(&t);
}

Status SystemCEngine::DoInsert(const std::string& table, Row row) {
  Table* t = Find(table);
  if (t == nullptr) return Status::NotFound("table " + table);
  if (static_cast<int>(row.size()) != t->def.schema.num_columns()) {
    return Status::InvalidArgument("row arity mismatch for " + table);
  }
  AppendVersion(t, std::move(row), MutationTime());
  MaybeMerge(t);
  return Status::OK();
}

Status SystemCEngine::DoUpdateCurrent(const std::string& table,
                                    const std::vector<Value>& key,
                                    const std::vector<ColumnAssignment>& set) {
  Table* t = Find(table);
  if (t == nullptr) return Status::NotFound("table " + table);
  Timestamp ts = MutationTime();
  auto it = t->current_by_key.find(key);
  if (it == t->current_by_key.end()) {
    return Status::NotFound("no current version of key");
  }
  std::vector<Loc> locs = it->second;
  for (const Loc& loc : locs) {
    ColumnTable* part = PartOf(t, loc.part);
    Row user_row = part->GetRow(loc.rid);
    user_row.resize(static_cast<size_t>(t->def.schema.num_columns()));
    for (const ColumnAssignment& a : set) {
      user_row[static_cast<size_t>(a.column)] = a.value;
    }
    InvalidateVersion(t, loc, ts);
    AppendVersion(t, std::move(user_row), ts);
  }
  MaybeMerge(t);
  return Status::OK();
}

Status SystemCEngine::ApplySequenced(const std::string& table,
                                     const std::vector<Value>& key,
                                     int period_index, const Period& period,
                                     const std::vector<ColumnAssignment>& set,
                                     int mode) {
  Table* t = Find(table);
  if (t == nullptr) return Status::NotFound("table " + table);
  if (period_index < 0 ||
      period_index >= static_cast<int>(t->def.app_periods.size())) {
    return Status::InvalidArgument("no such application-time period");
  }
  const AppPeriodDef& ap =
      t->def.app_periods[static_cast<size_t>(period_index)];
  Timestamp ts = MutationTime();
  auto it = t->current_by_key.find(key);
  if (it == t->current_by_key.end()) {
    return Status::NotFound("no current version of key");
  }
  std::vector<Loc> locs = it->second;
  std::vector<Row> versions;
  versions.reserve(locs.size());
  for (const Loc& loc : locs) {
    versions.push_back(PartOf(t, loc.part)->GetRow(loc.rid));
  }
  SequencedOps ops;
  switch (mode) {
    case 0:
      ops = PlanSequencedUpdate(versions, ap.begin_col, ap.end_col, period, set);
      break;
    case 1:
      ops = PlanSequencedDelete(versions, ap.begin_col, ap.end_col, period);
      break;
    default:
      ops = PlanOverwriteUpdate(versions, ap.begin_col, ap.end_col, period, set);
      break;
  }
  for (size_t vi : ops.to_close) InvalidateVersion(t, locs[vi], ts);
  for (Row& r : ops.to_insert) {
    r.resize(static_cast<size_t>(t->def.schema.num_columns()));
    AppendVersion(t, std::move(r), ts);
  }
  MaybeMerge(t);
  return Status::OK();
}

Status SystemCEngine::DoUpdateSequenced(const std::string& table,
                                      const std::vector<Value>& key,
                                      int period_index, const Period& period,
                                      const std::vector<ColumnAssignment>& set) {
  return ApplySequenced(table, key, period_index, period, set, 0);
}

Status SystemCEngine::DoUpdateOverwrite(const std::string& table,
                                      const std::vector<Value>& key,
                                      int period_index, const Period& period,
                                      const std::vector<ColumnAssignment>& set) {
  return ApplySequenced(table, key, period_index, period, set, 2);
}

Status SystemCEngine::DoDeleteCurrent(const std::string& table,
                                    const std::vector<Value>& key) {
  Table* t = Find(table);
  if (t == nullptr) return Status::NotFound("table " + table);
  Timestamp ts = MutationTime();
  auto it = t->current_by_key.find(key);
  if (it == t->current_by_key.end()) {
    return Status::NotFound("no current version of key");
  }
  std::vector<Loc> locs = it->second;
  for (const Loc& loc : locs) InvalidateVersion(t, loc, ts);
  return Status::OK();
}

Status SystemCEngine::DoDeleteSequenced(const std::string& table,
                                      const std::vector<Value>& key,
                                      int period_index, const Period& period) {
  return ApplySequenced(table, key, period_index, period, {}, 1);
}

void SystemCEngine::ScanMorsel(const ColumnTable& part, const ScanRequest& req,
                               const TemporalCols& tc, int64_t now, int ncols,
                               const std::vector<uint8_t>& checked,
                               const std::vector<uint8_t>& emit_col,
                               uint64_t begin, uint64_t end,
                               const std::atomic<bool>& stop,
                               MorselOutput* out) const {
  for (RowId rid = begin; rid < end; ++rid) {
    if (MorselInterrupted(stop, req.ctx)) return;
    if (!part.IsLive(rid)) continue;
    ++out->rows_examined;
    // Fresh row per qualifying slot: columns that are neither checked nor
    // emitted stay null, exactly as in the serial loop's scratch row.
    Row row(static_cast<size_t>(ncols));
    for (int c = 0; c < ncols; ++c) {
      if (checked[static_cast<size_t>(c)]) row[static_cast<size_t>(c)] = part.Get(rid, c);
    }
    if (!MatchesTemporal(row, req.temporal, tc, now)) continue;
    if (!MatchesConstraints(row, req)) continue;
    for (int c = 0; c < ncols; ++c) {
      if (emit_col[static_cast<size_t>(c)] && !checked[static_cast<size_t>(c)]) {
        row[static_cast<size_t>(c)] = part.Get(rid, c);
      }
    }
    out->rows.push_back(std::move(row));
    out->examined_at.push_back(out->rows_examined);
  }
}

void SystemCEngine::ScanPartition(const Table& t, const ColumnTable& part,
                                  bool is_history, const ScanRequest& req,
                                  const TemporalCols& tc,
                                  const ParallelScanPlan& plan,
                                  ExecStats* stats, bool* stopped,
                                  const RowCallback& cb) {
  ++stats->partitions_touched;
  if (is_history) stats->touched_history = true;
  const int64_t now = clock_.Now().micros();
  const int ncols = t.stored_schema.num_columns();

  // Columns that predicates read; fetched before materialization so a scan
  // touches only the filter columns of non-qualifying rows — the column
  // store's advantage.
  std::vector<uint8_t> checked(static_cast<size_t>(ncols), 0);
  checked[static_cast<size_t>(tc.sys_from)] = 1;
  checked[static_cast<size_t>(tc.sys_to)] = 1;
  if (tc.app_begin >= 0) {
    checked[static_cast<size_t>(tc.app_begin)] = 1;
    checked[static_cast<size_t>(tc.app_end)] = 1;
  }
  for (const auto& [c, v] : req.equals) checked[static_cast<size_t>(c)] = 1;
  if (req.range_col >= 0) checked[static_cast<size_t>(req.range_col)] = 1;

  // Columns to materialize in emitted rows.
  std::vector<uint8_t> emit_col(static_cast<size_t>(ncols), 0);
  if (req.projection.empty()) {
    std::fill(emit_col.begin(), emit_col.end(), 1);
  } else {
    for (int c : req.projection) emit_col[static_cast<size_t>(c)] = 1;
    emit_col[static_cast<size_t>(tc.sys_from)] = 1;
    emit_col[static_cast<size_t>(tc.sys_to)] = 1;
  }

  if (plan.Engage(part.SlotCount())) {
    ParallelScanPartition(
        plan, part.SlotCount(), req.ctx,
        [&](uint64_t begin, uint64_t end, const std::atomic<bool>& stop,
            MorselOutput* out) {
          ScanMorsel(part, req, tc, now, ncols, checked, emit_col, begin, end,
                     stop, out);
        },
        &stats->rows_examined, &stats->rows_output, stopped, cb);
    return;
  }

  const size_t slots = part.SlotCount();
  Row row(static_cast<size_t>(ncols));
  for (RowId rid = 0; rid < slots; ++rid) {
    if (req.ctx != nullptr && !req.ctx->KeepGoing()) {
      *stopped = true;
      return;
    }
    if (!part.IsLive(rid)) continue;
    ++stats->rows_examined;
    for (int c = 0; c < ncols; ++c) {
      if (checked[static_cast<size_t>(c)]) row[static_cast<size_t>(c)] = part.Get(rid, c);
    }
    if (!MatchesTemporal(row, req.temporal, tc, now)) continue;
    if (!MatchesConstraints(row, req)) continue;
    for (int c = 0; c < ncols; ++c) {
      if (emit_col[static_cast<size_t>(c)] && !checked[static_cast<size_t>(c)]) {
        row[static_cast<size_t>(c)] = part.Get(rid, c);
      }
    }
    ++stats->rows_output;
    if (!cb(row)) {
      *stopped = true;
      return;
    }
  }
}

void SystemCEngine::Scan(const ScanRequest& req, const RowCallback& cb) {
  Table* t = Find(req.table);
  BIH_CHECK_MSG(t != nullptr, "no table " + req.table);
  ExecStats local;
  ExecStats* stats = req.stats != nullptr ? req.stats : &local;
  *stats = ExecStats{};
  const TemporalCols tc = ResolveTemporalCols(t->def, req.temporal.app_period_index);
  const ParallelScanPlan plan =
      ResolveScanPlan(req.exec);
  bool stopped = false;
  ScanPartition(*t, t->delta, /*is_history=*/false, req, tc, plan, stats,
                &stopped, cb);
  if (!stopped) {
    ScanPartition(*t, t->main, /*is_history=*/false, req, tc, plan, stats,
                  &stopped, cb);
  }
  if (!stopped && t->def.system_versioned &&
      req.temporal.system_time.kind != TemporalSelector::Kind::kImplicitCurrent) {
    ScanPartition(*t, t->history, /*is_history=*/true, req, tc, plan, stats,
                  &stopped, cb);
  }
  if (req.stats == nullptr) PublishStats(local);
}

std::vector<std::string> SystemCEngine::ListTables() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, t] : tables_) names.push_back(name);
  std::sort(names.begin(), names.end());
  return names;
}

Status SystemCEngine::DoInstallVersion(const std::string& table,
                                       const Row& stored) {
  Table* t = Find(table);
  if (t == nullptr) return Status::NotFound("table " + table);
  if (static_cast<int>(stored.size()) != t->stored_schema.num_columns()) {
    return Status::InvalidArgument("snapshot row arity mismatch for " + table);
  }
  const size_t user_cols = static_cast<size_t>(t->def.schema.num_columns());
  const int64_t sys_from = stored[user_cols].AsInt();
  const bool open = stored[user_cols + 1].AsInt() == Period::kForever;
  if (open) {
    Row user_row(stored.begin(), stored.begin() + static_cast<long>(user_cols));
    AppendVersion(t, std::move(user_row), Timestamp(sys_from));
    MaybeMerge(t);
  } else {
    // Invalidated versions land in history directly; they never pass
    // through delta, so no key-map maintenance is needed.
    t->history.Append(stored);
  }
  return Status::OK();
}

TableStats SystemCEngine::GetTableStats(const std::string& table) const {
  const Table* t = Find(table);
  BIH_CHECK_MSG(t != nullptr, "no table " + table);
  TableStats s;
  s.current_rows = t->delta.LiveCount() + t->main.LiveCount();
  s.history_rows = t->history.LiveCount();
  return s;
}

}  // namespace bih
