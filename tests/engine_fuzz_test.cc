// Randomized differential test: a reference bitemporal model (brute force
// over every version ever created) is driven with the same operation
// sequence as all four engines; random temporal queries must agree
// everywhere. This is the strongest correctness property in the suite: the
// engines share no storage code with the model.
#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "engine/engine.h"
#include "engine/recovery.h"
#include "reference_model.h"
#include "temporal/clock.h"

namespace bih {
namespace {

class EngineFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(EngineFuzzTest, EnginesMatchModelUnderRandomOps) {
  const uint64_t seed = static_cast<uint64_t>(GetParam());
  Rng rng(seed);

  // Every engine runs WAL-attached (before DDL, so CreateTable is logged);
  // at the end each log is replayed into a fresh engine that must answer
  // the random queries identically to the original.
  std::vector<std::unique_ptr<TemporalEngine>> engines;
  std::vector<std::string> wal_paths;
  for (const std::string& letter : AllEngineLetters()) {
    engines.push_back(MakeEngine(letter));
    wal_paths.push_back(::testing::TempDir() + "/fuzz_" + letter + "_" +
                        std::to_string(seed) + ".wal");
    ASSERT_TRUE(engines.back()->EnableWal(wal_paths.back()).ok());
    ASSERT_TRUE(engines.back()->CreateTable(FuzzItemDef()).ok());
  }
  Model model;
  CommitClock model_clock;

  std::vector<int64_t> keys;
  int64_t next_key = 1;
  std::vector<int64_t> interesting_sys;  // timestamps to time travel to
  interesting_sys.push_back(model_clock.Now().micros());

  const int kOps = 400;
  for (int step = 0; step < kOps; ++step) {
    int choice = static_cast<int>(rng.UniformInt(0, 9));
    int64_t ts = model_clock.NextCommit().micros();
    // Build the op deterministically, apply to model + every engine.
    if (choice <= 3 || keys.empty()) {
      // Insert a fresh key with a random validity period.
      int64_t id = next_key++;
      int64_t vb = rng.UniformInt(0, 300);
      int64_t ve = rng.Bernoulli(0.3) ? Period::kForever
                                      : vb + rng.UniformInt(1, 200);
      Row row{Value(id), Value(double(rng.UniformInt(1, 1000))),
              Value(rng.Bernoulli(0.5) ? "x" : "y"), Value(vb), Value(ve)};
      model.Insert(row, ts);
      for (auto& e : engines) ASSERT_TRUE(e->Insert("ITEM", row).ok());
      keys.push_back(id);
    } else {
      int64_t id = keys[static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(keys.size()) - 1))];
      std::vector<ColumnAssignment> set{
          {1, Value(double(rng.UniformInt(1, 1000)))}};
      int64_t wb = rng.UniformInt(0, 400);
      Period window(wb, rng.Bernoulli(0.3) ? Period::kForever
                                           : wb + rng.UniformInt(1, 150));
      bool model_did = false;
      Status expect;
      switch (choice) {
        case 4:
        case 5:
          model_did = model.UpdateCurrent(id, set, ts);
          for (auto& e : engines) {
            Status st = e->UpdateCurrent("ITEM", {Value(id)}, set);
            ASSERT_EQ(model_did, st.ok()) << e->name() << " step " << step;
          }
          break;
        case 6:
          model_did = model.Sequenced(id, window, set, 0, ts);
          for (auto& e : engines) {
            Status st = e->UpdateSequenced("ITEM", {Value(id)}, 0, window, set);
            ASSERT_EQ(model_did, st.ok()) << e->name() << " step " << step;
          }
          break;
        case 7:
          model_did = model.Sequenced(id, window, set, 2, ts);
          for (auto& e : engines) {
            Status st = e->UpdateOverwrite("ITEM", {Value(id)}, 0, window, set);
            ASSERT_EQ(model_did, st.ok()) << e->name() << " step " << step;
          }
          break;
        case 8:
          model_did = model.Sequenced(id, window, {}, 1, ts);
          for (auto& e : engines) {
            Status st = e->DeleteSequenced("ITEM", {Value(id)}, 0, window);
            ASSERT_EQ(model_did, st.ok()) << e->name() << " step " << step;
          }
          break;
        default:
          model_did = model.DeleteCurrent(id, ts);
          for (auto& e : engines) {
            Status st = e->DeleteCurrent("ITEM", {Value(id)});
            ASSERT_EQ(model_did, st.ok()) << e->name() << " step " << step;
          }
          break;
      }
    }
    if (step % 37 == 0) interesting_sys.push_back(ts);
    // Occasionally run maintenance (System C merge) mid-stream.
    if (step % 97 == 0) {
      for (auto& e : engines) e->Maintain();
    }
  }

  // Replay every WAL into a fresh engine of the same architecture. The
  // reports must be clean (no dropped ops, no torn tail) and the recovered
  // clocks must match exactly, so time-travel queries agree below.
  std::vector<std::unique_ptr<TemporalEngine>> recovered;
  for (size_t i = 0; i < engines.size(); ++i) {
    std::unique_ptr<TemporalEngine> r;
    RecoveryReport report;
    Status st = RecoverEngine(AllEngineLetters()[i], wal_paths[i], &r, &report);
    ASSERT_TRUE(st.ok()) << st.ToString();
    EXPECT_EQ(0u, report.ops_dropped) << report.ToString();
    EXPECT_FALSE(report.tail_dropped) << report.ToString();
    // Failed ops (NotFound) consume a commit tick but are never logged, so
    // the recovered clock may lag the original — but never run ahead, and
    // never behind the last durable commit. Durable mutation timestamps
    // themselves are compared exactly by the All-time queries below.
    ASSERT_GE(engines[i]->Now().micros(), r->Now().micros())
        << r->name() << " recovered clock ran ahead";
    ASSERT_GE(r->Now().micros(), report.last_commit_ts)
        << r->name() << " recovered clock behind last durable commit";
    recovered.push_back(std::move(r));
  }
  std::vector<TemporalEngine*> checked;
  for (auto& e : engines) checked.push_back(e.get());
  for (auto& r : recovered) checked.push_back(r.get());

  // Random temporal queries: engines (original and recovered) vs model.
  const int64_t now = model_clock.Now().micros();
  for (int trial = 0; trial < 60; ++trial) {
    TemporalScanSpec spec;
    switch (rng.UniformInt(0, 3)) {
      case 0:
        spec.system_time = TemporalSelector::ImplicitCurrent();
        break;
      case 1:
        spec.system_time = TemporalSelector::AsOf(interesting_sys[
            static_cast<size_t>(rng.UniformInt(
                0, static_cast<int64_t>(interesting_sys.size()) - 1))]);
        break;
      case 2: {
        int64_t a = interesting_sys[static_cast<size_t>(rng.UniformInt(
            0, static_cast<int64_t>(interesting_sys.size()) - 1))];
        spec.system_time = TemporalSelector::Between(a, now + 1);
        break;
      }
      default:
        spec.system_time = TemporalSelector::All();
        break;
    }
    switch (rng.UniformInt(0, 2)) {
      case 0:
        spec.app_time = TemporalSelector::AsOf(rng.UniformInt(0, 500));
        break;
      case 1: {
        int64_t a = rng.UniformInt(0, 400);
        spec.app_time = TemporalSelector::Between(a, a + rng.UniformInt(1, 200));
        break;
      }
      default:
        spec.app_time = TemporalSelector::All();
        break;
    }
    int64_t key = rng.Bernoulli(0.4)
                      ? keys[static_cast<size_t>(rng.UniformInt(
                            0, static_cast<int64_t>(keys.size()) - 1))]
                      : -1;
    std::vector<Row> expect = Canonical(model.Query(spec, now, key));
    for (TemporalEngine* e : checked) {
      ScanRequest req;
      req.table = "ITEM";
      req.temporal = spec;
      if (key >= 0) req.equals = {{0, Value(key)}};
      std::vector<Row> got;
      e->Scan(req, [&](const Row& row) {
        got.push_back(row);
        return true;
      });
      got = Canonical(std::move(got));
      ASSERT_EQ(expect.size(), got.size())
          << e->name() << " trial " << trial << " sys="
          << spec.system_time.ToString() << " app=" << spec.app_time.ToString();
      for (size_t i = 0; i < expect.size(); ++i) {
        for (size_t c = 0; c < expect[i].size(); ++c) {
          ASSERT_EQ(0, expect[i][c].Compare(got[i][c]))
              << e->name() << " trial " << trial << " row " << i << " col "
              << c;
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EngineFuzzTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace bih
