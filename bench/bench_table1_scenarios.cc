// Table 1: the update-scenario mix of the history generator — empirical
// frequencies vs the specified probabilities — plus generator throughput
// (the paper reports 0.6 M tuples/s for its generator).
#include <chrono>
#include <cstdio>

#include "bench_common.h"

namespace bih {
namespace bench {
namespace {

void Run() {
  const double h = EnvScale("BIH_H", 0.001);
  const double m = EnvScale("BIH_M", 0.01);
  TpchData initial = GenerateTpch({h, 42});

  GeneratorConfig gcfg;
  gcfg.m = m;
  gcfg.seed = 7;
  HistoryGenerator gen(initial, gcfg);
  auto t0 = std::chrono::steady_clock::now();
  History history = gen.Generate();
  auto t1 = std::chrono::steady_clock::now();
  const HistoryStats& st = gen.stats();

  PrintHeader("Table 1: update scenarios of the history generator");
  std::printf("%-28s %12s %12s %12s\n", "scenario", "probability",
              "empirical", "count");
  std::vector<double> probs = ScenarioProbabilities();
  for (size_t i = 0; i < probs.size(); ++i) {
    double got = static_cast<double>(st.scenario_counts[i]) /
                 static_cast<double>(st.total_transactions);
    std::printf("%-28s %12.3f %12.3f %12lld\n",
                ScenarioName(static_cast<Scenario>(i)), probs[i], got,
                static_cast<long long>(st.scenario_counts[i]));
  }
  double secs = std::chrono::duration<double>(t1 - t0).count();
  std::printf("\n%lld transactions, %lld operations in %.2f s "
              "(%.2f M ops/s)\n",
              static_cast<long long>(st.total_transactions),
              static_cast<long long>(st.total_operations), secs,
              static_cast<double>(st.total_operations) / secs / 1e6);
}

}  // namespace
}  // namespace bench
}  // namespace bih

int main() {
  bih::bench::Run();
  return 0;
}
