#include "net/protocol.h"

#include <cstring>

#include "durability/wal.h"

namespace bih {
namespace net {

namespace {

// Same primitive vocabulary as the WAL payload encoding (durability/wal.cc
// keeps its copies file-local; the two codecs evolve independently, only
// the frame shape and the CRC are shared).

void PutU8(uint8_t v, std::string* out) {
  out->push_back(static_cast<char>(v));
}

void PutU32(uint32_t v, std::string* out) {
  char buf[4];
  std::memcpy(buf, &v, 4);
  out->append(buf, 4);
}

void PutU64(uint64_t v, std::string* out) {
  char buf[8];
  std::memcpy(buf, &v, 8);
  out->append(buf, 8);
}

void PutString(const std::string& s, std::string* out) {
  PutU32(static_cast<uint32_t>(s.size()), out);
  out->append(s);
}

void PutValue(const Value& v, std::string* out) {
  if (v.is_null()) {
    PutU8(0, out);
  } else if (v.is_int()) {
    PutU8(1, out);
    int64_t i = v.AsInt();
    char buf[8];
    std::memcpy(buf, &i, 8);
    out->append(buf, 8);
  } else if (v.is_double()) {
    PutU8(2, out);
    double d = v.AsDouble();
    char buf[8];
    std::memcpy(buf, &d, 8);
    out->append(buf, 8);
  } else {
    PutU8(3, out);
    PutString(v.AsString(), out);
  }
}

struct Cursor {
  const uint8_t* p;
  size_t left;

  bool Get(void* dst, size_t n) {
    if (left < n) return false;
    std::memcpy(dst, p, n);
    p += n;
    left -= n;
    return true;
  }
  bool GetU8(uint8_t* v) { return Get(v, 1); }
  bool GetU32(uint32_t* v) { return Get(v, 4); }
  bool GetU64(uint64_t* v) { return Get(v, 8); }
  bool GetString(std::string* s) {
    uint32_t n;
    if (!GetU32(&n) || left < n) return false;
    s->assign(reinterpret_cast<const char*>(p), n);
    p += n;
    left -= n;
    return true;
  }
  bool GetValue(Value* v) {
    uint8_t tag;
    if (!GetU8(&tag)) return false;
    switch (tag) {
      case 0:
        *v = Value::Null();
        return true;
      case 1: {
        int64_t i;
        if (!Get(&i, 8)) return false;
        *v = Value(i);
        return true;
      }
      case 2: {
        double d;
        if (!Get(&d, 8)) return false;
        *v = Value(d);
        return true;
      }
      case 3: {
        std::string s;
        if (!GetString(&s)) return false;
        *v = Value(std::move(s));
        return true;
      }
      default:
        return false;
    }
  }
};

bool ValidType(uint8_t t) {
  switch (static_cast<MsgType>(t)) {
    case MsgType::kHello:
    case MsgType::kQuery:
    case MsgType::kCancel:
    case MsgType::kStats:
    case MsgType::kPing:
    case MsgType::kGoodbye:
    case MsgType::kExplain:
    case MsgType::kHelloOk:
    case MsgType::kResult:
    case MsgType::kError:
    case MsgType::kStatsReply:
    case MsgType::kPong:
    case MsgType::kExplainReply:
      return true;
  }
  return false;
}

}  // namespace

void EncodeMessage(const Message& msg, std::string* payload) {
  payload->clear();
  PutU8(static_cast<uint8_t>(msg.type), payload);
  PutU32(msg.version, payload);
  PutU64(msg.conn_id, payload);
  PutU64(msg.request_id, payload);
  PutU32(msg.deadline_ms, payload);
  PutU32(msg.retry_after_ms, payload);
  PutU32(msg.scan_threads, payload);
  PutU8(msg.status_code, payload);
  PutString(msg.text, payload);
  PutString(msg.retry_hint, payload);
  PutU32(static_cast<uint32_t>(msg.columns.size()), payload);
  for (const std::string& c : msg.columns) PutString(c, payload);
  PutU32(static_cast<uint32_t>(msg.rows.size()), payload);
  for (const Row& row : msg.rows) {
    PutU32(static_cast<uint32_t>(row.size()), payload);
    for (const Value& v : row) PutValue(v, payload);
  }
}

Status DecodeMessage(const uint8_t* data, size_t n, Message* out) {
  *out = Message();
  Cursor c{data, n};
  uint8_t type;
  if (!c.GetU8(&type) || !ValidType(type)) {
    return Status::IoError("message has unknown type");
  }
  out->type = static_cast<MsgType>(type);
  if (!c.GetU32(&out->version) || !c.GetU64(&out->conn_id) ||
      !c.GetU64(&out->request_id) || !c.GetU32(&out->deadline_ms) ||
      !c.GetU32(&out->retry_after_ms) || !c.GetU32(&out->scan_threads) ||
      !c.GetU8(&out->status_code) ||
      !c.GetString(&out->text) || !c.GetString(&out->retry_hint)) {
    return Status::IoError("message header truncated");
  }
  uint32_t ncols;
  if (!c.GetU32(&ncols) || ncols > c.left) {
    return Status::IoError("message column list malformed");
  }
  out->columns.reserve(ncols);
  for (uint32_t i = 0; i < ncols; ++i) {
    std::string s;
    if (!c.GetString(&s)) {
      return Status::IoError("message column list malformed");
    }
    out->columns.push_back(std::move(s));
  }
  uint32_t nrows;
  if (!c.GetU32(&nrows) || nrows > c.left) {
    return Status::IoError("message row set malformed");
  }
  out->rows.reserve(nrows);
  for (uint32_t i = 0; i < nrows; ++i) {
    uint32_t nvals;
    if (!c.GetU32(&nvals) || nvals > c.left) {
      return Status::IoError("message row set malformed");
    }
    Row row;
    row.reserve(nvals);
    for (uint32_t j = 0; j < nvals; ++j) {
      Value v;
      if (!c.GetValue(&v)) {
        return Status::IoError("message row set malformed");
      }
      row.push_back(std::move(v));
    }
    out->rows.push_back(std::move(row));
  }
  if (c.left != 0) {
    return Status::IoError("message has trailing bytes");
  }
  return Status::OK();
}

void EncodeFrame(const std::string& payload, std::string* frame) {
  frame->clear();
  frame->reserve(payload.size() + kFrameHeaderBytes);
  const uint32_t len = static_cast<uint32_t>(payload.size());
  const uint32_t crc = WalCrc32(
      reinterpret_cast<const uint8_t*>(payload.data()), payload.size());
  frame->append(reinterpret_cast<const char*>(&len), 4);
  frame->append(reinterpret_cast<const char*>(&crc), 4);
  frame->append(payload);
}

Status DecodeFrame(const uint8_t* data, size_t n, size_t* consumed,
                   std::string* payload) {
  if (n < kFrameHeaderBytes) {
    return Status::OutOfRange("frame header incomplete");
  }
  uint32_t len, crc;
  std::memcpy(&len, data, 4);
  std::memcpy(&crc, data + 4, 4);
  if (len > kMaxFrameBytes) {
    return Status::IoError("frame length " + std::to_string(len) +
                           " exceeds limit");
  }
  if (n - kFrameHeaderBytes < len) {
    return Status::OutOfRange("frame payload incomplete");
  }
  const uint8_t* body = data + kFrameHeaderBytes;
  if (WalCrc32(body, len) != crc) {
    return Status::IoError("frame crc mismatch");
  }
  payload->assign(reinterpret_cast<const char*>(body), len);
  *consumed = kFrameHeaderBytes + len;
  return Status::OK();
}

}  // namespace net
}  // namespace bih
