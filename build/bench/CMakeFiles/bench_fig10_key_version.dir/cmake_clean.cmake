file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_key_version.dir/bench_fig10_key_version.cc.o"
  "CMakeFiles/bench_fig10_key_version.dir/bench_fig10_key_version.cc.o.d"
  "bench_fig10_key_version"
  "bench_fig10_key_version.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_key_version.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
