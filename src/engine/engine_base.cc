#include "engine/engine.h"

#include "engine/system_a.h"
#include "engine/system_b.h"
#include "engine/system_c.h"
#include "engine/system_d.h"

namespace bih {

void TemporalEngine::Begin() {
  BIH_CHECK_MSG(!in_txn_, "nested transactions are not supported");
  in_txn_ = true;
  txn_time_ = clock_.NextCommit();
}

Status TemporalEngine::Commit() {
  BIH_CHECK_MSG(in_txn_, "Commit without Begin");
  in_txn_ = false;
  return Status::OK();
}

Timestamp TemporalEngine::MutationTime() {
  return in_txn_ ? txn_time_ : clock_.NextCommit();
}

Status TemporalEngine::BulkLoad(const std::string& table,
                                std::vector<Row> rows) {
  (void)table;
  (void)rows;
  // Engines with engine-managed system time cannot accept explicit
  // timestamps; the history generator must replay transactions instead
  // (Section 4.2 of the paper).
  return Status::Unimplemented(
      "bulk load with explicit system time requires an engine without "
      "native system versioning");
}

std::unique_ptr<TemporalEngine> MakeEngine(const std::string& letter) {
  if (letter == "A") return std::make_unique<SystemAEngine>();
  if (letter == "B") return std::make_unique<SystemBEngine>();
  if (letter == "C") return std::make_unique<SystemCEngine>();
  if (letter == "D") return std::make_unique<SystemDEngine>();
  BIH_CHECK_MSG(false, "unknown engine letter: " + letter);
  return nullptr;
}

const std::vector<std::string>& AllEngineLetters() {
  static const std::vector<std::string>* letters =
      new std::vector<std::string>{"A", "B", "C", "D"};
  return *letters;
}

}  // namespace bih
