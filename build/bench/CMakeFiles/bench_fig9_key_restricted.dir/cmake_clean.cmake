file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_key_restricted.dir/bench_fig9_key_restricted.cc.o"
  "CMakeFiles/bench_fig9_key_restricted.dir/bench_fig9_key_restricted.cc.o.d"
  "bench_fig9_key_restricted"
  "bench_fig9_key_restricted.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_key_restricted.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
