#ifndef TPCBIH_BENCH_BENCH_COMMON_H_
#define TPCBIH_BENCH_BENCH_COMMON_H_

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "workload/context.h"
#include "workload/queries.h"
#include "workload/tpch_queries.h"

namespace bih {
namespace bench {

// Scale knobs for all benches. The paper runs h=1.0/m=1.0 on a 384 GB
// server; this repository defaults to small scales suited to a laptop core
// but keeps the same linear knobs: set BIH_H and BIH_M to raise them.
inline double EnvScale(const char* name, double fallback) {
  const char* v = std::getenv(name);
  return v == nullptr ? fallback : std::atof(v);
}

inline double ScaleH() { return EnvScale("BIH_H", 0.005); }
inline double ScaleM() { return EnvScale("BIH_M", 0.005); }

// One shared workload per bench binary: generated once, loaded on demand
// into each engine (same archive for every engine, Section 4.2).
class SharedWorkload {
 public:
  static SharedWorkload& Get() {
    static SharedWorkload* instance = new SharedWorkload();
    return *instance;
  }

  const WorkloadContext& ctx() const { return ctx_; }

  // The context's own engine for letter "A"; fresh loads for the others.
  TemporalEngine& Engine(const std::string& letter) {
    if (letter == "A") return *ctx_.engine;
    auto it = engines_.find(letter);
    if (it == engines_.end()) {
      std::fprintf(stderr, "# loading engine %s ...\n", letter.c_str());
      it = engines_.emplace(letter, LoadEngine(letter, ctx_.initial,
                                               ctx_.history)).first;
    }
    return *it->second;
  }

  // Fresh engine (not cached); for benches that mutate tuning state.
  std::unique_ptr<TemporalEngine> Fresh(const std::string& letter) {
    return LoadEngine(letter, ctx_.initial, ctx_.history);
  }

 private:
  SharedWorkload() {
    WorkloadConfig cfg;
    cfg.engine_letter = "A";
    cfg.h = ScaleH();
    cfg.m = ScaleM();
    cfg.seed = 42;
    std::fprintf(stderr, "# generating workload h=%.4f m=%.4f ...\n", cfg.h,
                 cfg.m);
    ctx_ = BuildWorkload(cfg);
  }

  WorkloadContext ctx_;
  std::map<std::string, std::unique_ptr<TemporalEngine>> engines_;
};

// Median wall time of `runs` executions (after one warmup), milliseconds.
template <typename Fn>
double TimeMs(Fn&& fn, int runs = 3) {
  fn();  // warmup
  std::vector<double> times;
  times.reserve(static_cast<size_t>(runs));
  for (int i = 0; i < runs; ++i) {
    auto t0 = std::chrono::steady_clock::now();
    fn();
    auto t1 = std::chrono::steady_clock::now();
    times.push_back(
        std::chrono::duration<double, std::milli>(t1 - t0).count());
  }
  std::sort(times.begin(), times.end());
  return times[times.size() / 2];
}

// Paper-style output helpers.
inline void PrintHeader(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

inline void PrintRow(const std::string& label,
                     const std::vector<std::pair<std::string, double>>& cells,
                     const char* unit = "ms") {
  std::printf("%-40s", label.c_str());
  for (const auto& [name, v] : cells) {
    std::printf("  %s=%.3f%s", name.c_str(), v, unit);
  }
  std::printf("\n");
}

}  // namespace bench
}  // namespace bih

#endif  // TPCBIH_BENCH_BENCH_COMMON_H_
