// Figure 12: key-in-time query (application-time evolution of one hot
// customer at a fixed early system time) as the history grows, under the
// Key+Time index setting.
//
// Expected shape (Section 5.5.4): indexed key access keeps the cost ~flat
// for A, C and D; System B stays higher because it still reconstructs the
// current partition's temporal information per query.
#include <cstdio>

#include "bench_common.h"

namespace bih {
namespace bench {
namespace {

void Run() {
  const double h = EnvScale("BIH_H", 0.001);
  PrintHeader("Figure 12: key query cost vs history size (Key+Time index)");
  std::printf("%-10s %-12s %14s\n", "m", "engine", "K1[ms]");
  TpchData initial = GenerateTpch({h, 42});
  for (double m : {0.002, 0.005, 0.01, 0.02}) {
    GeneratorConfig gcfg;
    gcfg.m = m;
    gcfg.seed = 43;
    HistoryGenerator gen(initial, gcfg);
    History history = gen.Generate();
    // The hottest customer of this history.
    std::map<int64_t, int64_t> cust_ops;
    for (const HistoryTransaction& txn : history) {
      for (const Operation& op : txn.ops) {
        if (op.table == "CUSTOMER" && op.kind != Operation::Kind::kInsert) {
          ++cust_ops[op.key[0].AsInt()];
        }
      }
    }
    int64_t hot = 1;
    for (const auto& [k, n] : cust_ops) {
      if (n > cust_ops[hot]) hot = k;
    }
    for (const std::string& letter : AllEngineLetters()) {
      auto engine = LoadEngine(letter, initial, history);
      Status st = ApplyIndexSetting(*engine, IndexSetting::kKeyTime);
      BIH_CHECK_MSG(st.ok(), st.ToString());
      Timestamp v0 = CommitClock().NextCommit();
      TemporalScanSpec spec;
      spec.app_time = TemporalSelector::All();
      spec.system_time = TemporalSelector::AsOf(v0.micros() + 1);
      double ms = TimeMs([&] { K1(*engine, hot, spec); }, 5);
      std::printf("%-10.4f System%-6s %14.3f\n", m, letter.c_str(), ms);
    }
  }
  std::printf(
      "\nShape check: A, C and D stay ~flat as m grows; System B remains "
      "the most expensive (vertical-partition reconstruction).\n");
}

}  // namespace
}  // namespace bench
}  // namespace bih

int main() {
  bih::bench::Run();
  return 0;
}
