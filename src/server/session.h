#ifndef TPCBIH_SERVER_SESSION_H_
#define TPCBIH_SERVER_SESSION_H_

#include <atomic>
#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

#include "engine/engine.h"
#include "exec/parallel.h"
#include "server/admission.h"

namespace bih {

// Knobs for one SessionManager.
struct SessionConfig {
  AdmissionConfig admission;
  // How often the watchdog sweeps the in-flight registry for overdue
  // queries. Zero disables the watchdog thread entirely.
  std::chrono::milliseconds watchdog_period{10};
  // Threads one scan may use (intra-query parallelism); 0 resolves to the
  // process default (BIH_SCAN_THREADS / SetDefaultScanThreads), 1 keeps
  // every read serial. When > 1, the manager owns a ScanScheduler sized
  // for this width and injects it into reads that do not bring their own.
  int scan_threads = 0;
};

// Concurrent front door for a TemporalEngine. The engines themselves are
// single-threaded; this layer adds the discipline a server needs:
//
//  * Reads run concurrently under a shared lock against a *pinned
//    snapshot*: the system-time watermark published by the last completed
//    write. Because the bitemporal stores never destroy versions, clamping
//    a query's system-time selector to the watermark yields exactly the
//    state at that commit, so a reader never observes half of a later
//    batch no matter how writes interleave.
//  * Writes take the exclusive side of the lock and reuse the engines'
//    existing WAL-mirrored DML path unchanged; after each write the engine
//    publishes deferred state (System B's undo log) so subsequent scans
//    are pure reads, then the watermark advances.
//  * Every read passes admission control first (bounded queue + load
//    shedding) and carries an optional QueryContext checked per row; a
//    background watchdog cancels queries that outlive their deadline even
//    if they are stuck off the per-row path.
//
// Every read call returns exactly one of: kOk (with rows), kDeadlineExceeded,
// kCancelled, or kResourceExhausted. An interrupted read leaves engine state
// untouched and returns no partial rows.
class SessionManager {
 public:
  // Serves an engine owned by someone else (e.g. a WorkloadContext).
  explicit SessionManager(TemporalEngine* engine, SessionConfig cfg = {});
  // Takes ownership of the engine.
  explicit SessionManager(std::unique_ptr<TemporalEngine> engine,
                          SessionConfig cfg = {});
  ~SessionManager();

  SessionManager(const SessionManager&) = delete;
  SessionManager& operator=(const SessionManager&) = delete;

  // A pinned system-time position. Reads against the same snapshot return
  // the same result regardless of concurrent writes.
  struct Snapshot {
    int64_t watermark = 0;
  };

  // Pins the current watermark (the last completed write).
  Snapshot OpenSnapshot() const {
    return Snapshot{watermark_.load(std::memory_order_acquire)};
  }

  // --- Reads -----------------------------------------------------------
  // Runs `req` against the current snapshot / `snap`, appending rows to
  // `out`. `ctx` (optional, borrowed) carries deadline and cancellation;
  // on a non-OK return `out` is left empty.
  Status Read(ScanRequest req, QueryContext* ctx, std::vector<Row>* out);
  Status ReadAt(Snapshot snap, ScanRequest req, QueryContext* ctx,
                std::vector<Row>* out);

  // --- Writes ----------------------------------------------------------
  // Runs `fn` on the engine under the exclusive lock; any combination of
  // DML (including Begin/Commit batches) is atomic with respect to
  // readers, and the watermark advances once it completes. The session
  // layer's single writer entry point — the convenience wrappers below all
  // route through it.
  Status Write(const std::function<Status(TemporalEngine&)>& fn);

  Status Insert(const std::string& table, Row row);
  Status UpdateCurrent(const std::string& table, const std::vector<Value>& key,
                       const std::vector<ColumnAssignment>& set);
  Status DeleteCurrent(const std::string& table, const std::vector<Value>& key);

  // --- Introspection ---------------------------------------------------
  struct ServerStats {
    AdmissionController::Stats admission;
    uint64_t reads_ok = 0;
    uint64_t reads_deadline = 0;
    uint64_t reads_cancelled = 0;
    uint64_t reads_shed = 0;
    uint64_t writes = 0;
    uint64_t watchdog_kills = 0;
  };
  ServerStats GetStats() const;

  TemporalEngine& engine() { return *engine_; }
  const AdmissionConfig& admission_config() const {
    return admission_.config();
  }

  // The manager's worker pool (null when configured serial) and resolved
  // per-scan thread count. The cancellation tests poll the scheduler's
  // idle count to prove interrupted parallel reads leave no worker busy.
  ScanScheduler* scheduler() { return scheduler_.get(); }
  int scan_threads() const { return scan_threads_; }

  // Clamps a system-time selector so it cannot observe commits after
  // `watermark`. Exposed for the tests' reference models.
  static TemporalSelector ClampToWatermark(const TemporalSelector& sel,
                                           int64_t watermark);

 private:
  void Init(SessionConfig cfg);
  void WatchdogLoop();

  Status DoRead(Snapshot snap, ScanRequest& req, QueryContext* ctx,
                std::vector<Row>* out);

  std::unique_ptr<TemporalEngine> owned_engine_;
  TemporalEngine* engine_ = nullptr;

  // Intra-query parallelism: helpers shared by all concurrent reads.
  int scan_threads_ = 1;
  std::unique_ptr<ScanScheduler> scheduler_;

  // Readers shared, writers exclusive. Readers acquire with try_lock_shared
  // in short polled slices so a reader stuck behind a long write still
  // honours its QueryContext. (Not try_lock_shared_for: the timed rwlock
  // acquisition compiles to pthread_rwlock_clockrdlock, which TSan does not
  // intercept, and the whole point of this layer is to be TSan-clean.)
  std::shared_mutex rw_mu_;

  // System time of the last completed write; readers pin this. Published
  // with release ordering after the write fully completed.
  std::atomic<int64_t> watermark_{0};

  AdmissionController admission_;

  // In-flight registry for the watchdog.
  std::mutex inflight_mu_;
  std::unordered_set<QueryContext*> inflight_;

  std::chrono::milliseconds watchdog_period_{0};
  std::thread watchdog_;
  std::mutex watchdog_mu_;
  std::condition_variable watchdog_cv_;
  bool shutdown_ = false;

  mutable std::mutex stats_mu_;
  ServerStats stats_;
};

}  // namespace bih

#endif  // TPCBIH_SERVER_SESSION_H_
