#include "engine/engine.h"

#include "engine/system_a.h"
#include "engine/system_b.h"
#include "engine/system_c.h"
#include "engine/system_d.h"

namespace bih {

void TemporalEngine::Begin() {
  BIH_CHECK_MSG(!in_txn_, "nested transactions are not supported");
  in_txn_ = true;
  txn_time_ = clock_.NextCommit();
  txn_wal_.clear();
}

Status TemporalEngine::Commit() {
  BIH_CHECK_MSG(in_txn_, "Commit without Begin");
  in_txn_ = false;
  if (wal_ == nullptr || txn_wal_.empty()) {
    txn_wal_.clear();
    return Status::OK();
  }
  // The batch becomes durable atomically: its records followed by a commit
  // marker, then one flush. A crash anywhere before the marker lands makes
  // recovery discard the whole batch.
  Status st;
  for (const WalRecord& rec : txn_wal_) {
    st = wal_->Append(rec);
    if (!st.ok()) break;
  }
  if (st.ok()) {
    WalRecord commit;
    commit.kind = WalRecord::Kind::kCommit;
    commit.ts = txn_time_.micros();
    st = wal_->Append(commit);
  }
  txn_wal_.clear();
  if (!st.ok()) return st;
  return wal_->Flush();
}

Status TemporalEngine::LogMutation(WalRecord rec) {
  if (in_txn_) {
    rec.flags |= WalRecord::kInTxn;
    txn_wal_.push_back(std::move(rec));
    return Status::OK();
  }
  BIH_RETURN_IF_ERROR(wal_->Append(rec));
  return wal_->Flush();
}

Status TemporalEngine::CreateTable(const TableDef& def) {
  Status st = DoCreateTable(def);
  if (st.ok() && wal_ != nullptr) {
    WalRecord rec;
    rec.kind = WalRecord::Kind::kCreateTable;
    rec.def = def;
    BIH_RETURN_IF_ERROR(LogMutation(std::move(rec)));
  }
  return st;
}

Status TemporalEngine::Insert(const std::string& table, Row row) {
  AllocateMutationTime();
  WalRecord rec;
  if (wal_ != nullptr) {
    rec.kind = WalRecord::Kind::kInsert;
    rec.ts = MutationTime().micros();
    rec.table = table;
    rec.row = row;
  }
  Status st = DoInsert(table, std::move(row));
  if (st.ok() && wal_ != nullptr) {
    BIH_RETURN_IF_ERROR(LogMutation(std::move(rec)));
  }
  return st;
}

Status TemporalEngine::BulkLoad(const std::string& table,
                                std::vector<Row> rows) {
  WalRecord rec;
  if (wal_ != nullptr) {
    rec.kind = WalRecord::Kind::kBulkLoad;
    rec.table = table;
    rec.rows = rows;
  }
  Status st = DoBulkLoad(table, std::move(rows));
  if (st.ok() && wal_ != nullptr) {
    BIH_RETURN_IF_ERROR(LogMutation(std::move(rec)));
  }
  return st;
}

Status TemporalEngine::UpdateCurrent(const std::string& table,
                                     const std::vector<Value>& key,
                                     const std::vector<ColumnAssignment>& set) {
  AllocateMutationTime();
  Status st = DoUpdateCurrent(table, key, set);
  if (st.ok() && wal_ != nullptr) {
    WalRecord rec;
    rec.kind = WalRecord::Kind::kUpdateCurrent;
    rec.ts = MutationTime().micros();
    rec.table = table;
    rec.key = key;
    rec.set = set;
    BIH_RETURN_IF_ERROR(LogMutation(std::move(rec)));
  }
  return st;
}

Status TemporalEngine::UpdateSequenced(
    const std::string& table, const std::vector<Value>& key, int period_index,
    const Period& period, const std::vector<ColumnAssignment>& set) {
  AllocateMutationTime();
  Status st = DoUpdateSequenced(table, key, period_index, period, set);
  if (st.ok() && wal_ != nullptr) {
    WalRecord rec;
    rec.kind = WalRecord::Kind::kUpdateSequenced;
    rec.ts = MutationTime().micros();
    rec.table = table;
    rec.key = key;
    rec.period_index = period_index;
    rec.period = period;
    rec.set = set;
    BIH_RETURN_IF_ERROR(LogMutation(std::move(rec)));
  }
  return st;
}

Status TemporalEngine::UpdateOverwrite(
    const std::string& table, const std::vector<Value>& key, int period_index,
    const Period& period, const std::vector<ColumnAssignment>& set) {
  AllocateMutationTime();
  Status st = DoUpdateOverwrite(table, key, period_index, period, set);
  if (st.ok() && wal_ != nullptr) {
    WalRecord rec;
    rec.kind = WalRecord::Kind::kUpdateOverwrite;
    rec.ts = MutationTime().micros();
    rec.table = table;
    rec.key = key;
    rec.period_index = period_index;
    rec.period = period;
    rec.set = set;
    BIH_RETURN_IF_ERROR(LogMutation(std::move(rec)));
  }
  return st;
}

Status TemporalEngine::DeleteCurrent(const std::string& table,
                                     const std::vector<Value>& key) {
  AllocateMutationTime();
  Status st = DoDeleteCurrent(table, key);
  if (st.ok() && wal_ != nullptr) {
    WalRecord rec;
    rec.kind = WalRecord::Kind::kDeleteCurrent;
    rec.ts = MutationTime().micros();
    rec.table = table;
    rec.key = key;
    BIH_RETURN_IF_ERROR(LogMutation(std::move(rec)));
  }
  return st;
}

Status TemporalEngine::DeleteSequenced(const std::string& table,
                                       const std::vector<Value>& key,
                                       int period_index, const Period& period) {
  AllocateMutationTime();
  Status st = DoDeleteSequenced(table, key, period_index, period);
  if (st.ok() && wal_ != nullptr) {
    WalRecord rec;
    rec.kind = WalRecord::Kind::kDeleteSequenced;
    rec.ts = MutationTime().micros();
    rec.table = table;
    rec.key = key;
    rec.period_index = period_index;
    rec.period = period;
    BIH_RETURN_IF_ERROR(LogMutation(std::move(rec)));
  }
  return st;
}

Status TemporalEngine::EnableWal(const std::string& path,
                                 FaultInjector* fault) {
  std::unique_ptr<WalWriter> wal;
  BIH_RETURN_IF_ERROR(WalWriter::Open(path, fault, &wal));
  return AttachWal(std::move(wal));
}

Status TemporalEngine::AttachWal(std::unique_ptr<WalWriter> wal) {
  if (in_txn_) {
    return Status::InvalidArgument("cannot attach a WAL inside a transaction");
  }
  wal_ = std::move(wal);
  txn_wal_.clear();
  return Status::OK();
}

Status TemporalEngine::ApplyWalRecord(const WalRecord& rec) {
  mutation_time_ = Timestamp(rec.ts);
  if (clock_.Now().micros() < rec.ts) {
    clock_.Reset(Timestamp(rec.ts));
  }
  switch (rec.kind) {
    case WalRecord::Kind::kCreateTable:
      return DoCreateTable(rec.def);
    case WalRecord::Kind::kInsert:
      return DoInsert(rec.table, rec.row);
    case WalRecord::Kind::kBulkLoad:
      return DoBulkLoad(rec.table, rec.rows);
    case WalRecord::Kind::kUpdateCurrent:
      return DoUpdateCurrent(rec.table, rec.key, rec.set);
    case WalRecord::Kind::kUpdateSequenced:
      return DoUpdateSequenced(rec.table, rec.key, rec.period_index,
                               rec.period, rec.set);
    case WalRecord::Kind::kUpdateOverwrite:
      return DoUpdateOverwrite(rec.table, rec.key, rec.period_index,
                               rec.period, rec.set);
    case WalRecord::Kind::kDeleteCurrent:
      return DoDeleteCurrent(rec.table, rec.key);
    case WalRecord::Kind::kDeleteSequenced:
      return DoDeleteSequenced(rec.table, rec.key, rec.period_index,
                               rec.period);
    case WalRecord::Kind::kCommit:
      return Status::OK();
    case WalRecord::Kind::kSnapshotRows:
      for (const Row& stored : rec.rows) {
        BIH_RETURN_IF_ERROR(DoInstallVersion(rec.table, stored));
      }
      return Status::OK();
    case WalRecord::Kind::kCheckpointFooter:
      // Nothing to install: the clock reset above already restored the
      // commit watermark the footer carries in ts.
      return Status::OK();
  }
  return Status::Internal("unhandled wal record kind");
}

Status TemporalEngine::DoBulkLoad(const std::string& table,
                                  std::vector<Row> rows) {
  (void)table;
  (void)rows;
  // Engines with engine-managed system time cannot accept explicit
  // timestamps; the history generator must replay transactions instead
  // (Section 4.2 of the paper).
  return Status::Unimplemented(
      "bulk load with explicit system time requires an engine without "
      "native system versioning");
}

std::unique_ptr<TemporalEngine> MakeEngine(const std::string& letter) {
  if (letter == "A") return std::make_unique<SystemAEngine>();
  if (letter == "B") return std::make_unique<SystemBEngine>();
  if (letter == "C") return std::make_unique<SystemCEngine>();
  if (letter == "D") return std::make_unique<SystemDEngine>();
  BIH_CHECK_MSG(false, "unknown engine letter: " + letter);
  return nullptr;
}

const std::vector<std::string>& AllEngineLetters() {
  static const std::vector<std::string>* letters =
      new std::vector<std::string>{"A", "B", "C", "D"};
  return *letters;
}

}  // namespace bih
