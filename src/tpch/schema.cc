#include "tpch/schema.h"

namespace bih {

namespace {
constexpr ColumnType kInt = ColumnType::kInt;
constexpr ColumnType kDouble = ColumnType::kDouble;
constexpr ColumnType kString = ColumnType::kString;
constexpr ColumnType kDate = ColumnType::kDate;
}  // namespace

TableDef RegionDef() {
  TableDef def;
  def.name = "REGION";
  def.schema = Schema({{"R_REGIONKEY", kInt}, {"R_NAME", kString},
                       {"R_COMMENT", kString}});
  def.primary_key = {region::kRegionKey};
  def.system_versioned = false;
  return def;
}

TableDef NationDef() {
  TableDef def;
  def.name = "NATION";
  def.schema = Schema({{"N_NATIONKEY", kInt},
                       {"N_NAME", kString},
                       {"N_REGIONKEY", kInt},
                       {"N_COMMENT", kString}});
  def.primary_key = {nation::kNationKey};
  def.system_versioned = false;
  return def;
}

TableDef SupplierDef() {
  TableDef def;
  def.name = "SUPPLIER";
  def.schema = Schema({{"S_SUPPKEY", kInt},
                       {"S_NAME", kString},
                       {"S_ADDRESS", kString},
                       {"S_NATIONKEY", kInt},
                       {"S_PHONE", kString},
                       {"S_ACCTBAL", kDouble}});
  def.primary_key = {supplier::kSuppKey};
  // Degenerate temporal table: the system time doubles as the application
  // time (paper Section 3.1); no explicit application period columns.
  def.system_versioned = true;
  return def;
}

TableDef PartDef() {
  TableDef def;
  def.name = "PART";
  def.schema = Schema({{"P_PARTKEY", kInt},
                       {"P_NAME", kString},
                       {"P_MFGR", kString},
                       {"P_BRAND", kString},
                       {"P_TYPE", kString},
                       {"P_SIZE", kInt},
                       {"P_CONTAINER", kString},
                       {"P_RETAILPRICE", kDouble},
                       {"P_AVAIL_BEGIN", kDate},
                       {"P_AVAIL_END", kDate}});
  def.primary_key = {part::kPartKey};
  def.app_periods = {
      {"AVAILABILITY_TIME", part::kAvailBegin, part::kAvailEnd}};
  def.system_versioned = true;
  return def;
}

TableDef PartSuppDef() {
  TableDef def;
  def.name = "PARTSUPP";
  def.schema = Schema({{"PS_PARTKEY", kInt},
                       {"PS_SUPPKEY", kInt},
                       {"PS_AVAILQTY", kInt},
                       {"PS_SUPPLYCOST", kDouble},
                       {"PS_VALID_BEGIN", kDate},
                       {"PS_VALID_END", kDate}});
  def.primary_key = {partsupp::kPartKey, partsupp::kSuppKey};
  def.app_periods = {
      {"VALIDITY_TIME", partsupp::kValidBegin, partsupp::kValidEnd}};
  def.system_versioned = true;
  return def;
}

TableDef CustomerDef() {
  TableDef def;
  def.name = "CUSTOMER";
  def.schema = Schema({{"C_CUSTKEY", kInt},
                       {"C_NAME", kString},
                       {"C_ADDRESS", kString},
                       {"C_NATIONKEY", kInt},
                       {"C_PHONE", kString},
                       {"C_ACCTBAL", kDouble},
                       {"C_MKTSEGMENT", kString},
                       {"C_VISIBLE_BEGIN", kDate},
                       {"C_VISIBLE_END", kDate}});
  def.primary_key = {customer::kCustKey};
  def.app_periods = {
      {"VISIBLE_TIME", customer::kVisibleBegin, customer::kVisibleEnd}};
  def.system_versioned = true;
  return def;
}

TableDef OrdersDef() {
  TableDef def;
  def.name = "ORDERS";
  def.schema = Schema({{"O_ORDERKEY", kInt},
                       {"O_CUSTKEY", kInt},
                       {"O_ORDERSTATUS", kString},
                       {"O_TOTALPRICE", kDouble},
                       {"O_ORDERDATE", kDate},
                       {"O_ORDERPRIORITY", kString},
                       {"O_CLERK", kString},
                       {"O_SHIPPRIORITY", kInt},
                       {"O_ACTIVE_BEGIN", kDate},
                       {"O_ACTIVE_END", kDate},
                       {"O_RECEIVABLE_BEGIN", kDate},
                       {"O_RECEIVABLE_END", kDate}});
  def.primary_key = {orders::kOrderKey};
  def.app_periods = {
      {"ACTIVE_TIME", orders::kActiveBegin, orders::kActiveEnd},
      {"RECEIVABLE_TIME", orders::kReceivableBegin, orders::kReceivableEnd}};
  def.system_versioned = true;
  return def;
}

TableDef LineitemDef() {
  TableDef def;
  def.name = "LINEITEM";
  def.schema = Schema({{"L_ORDERKEY", kInt},
                       {"L_PARTKEY", kInt},
                       {"L_SUPPKEY", kInt},
                       {"L_LINENUMBER", kInt},
                       {"L_QUANTITY", kDouble},
                       {"L_EXTENDEDPRICE", kDouble},
                       {"L_DISCOUNT", kDouble},
                       {"L_TAX", kDouble},
                       {"L_RETURNFLAG", kString},
                       {"L_LINESTATUS", kString},
                       {"L_SHIPDATE", kDate},
                       {"L_COMMITDATE", kDate},
                       {"L_RECEIPTDATE", kDate},
                       {"L_SHIPINSTRUCT", kString},
                       {"L_SHIPMODE", kString},
                       {"L_ACTIVE_BEGIN", kDate},
                       {"L_ACTIVE_END", kDate}});
  def.primary_key = {lineitem::kOrderKey, lineitem::kLineNumber};
  def.app_periods = {
      {"ACTIVE_TIME", lineitem::kActiveBegin, lineitem::kActiveEnd}};
  def.system_versioned = true;
  return def;
}

std::vector<TableDef> BiHSchema() {
  return {RegionDef(),   NationDef(), SupplierDef(), PartDef(),
          PartSuppDef(), CustomerDef(), OrdersDef(),  LineitemDef()};
}

}  // namespace bih
