// Fixture: must trip [raw-io]. Direct fflush/fsync/fdatasync calls outside
// src/durability/ fork the durability protocol: they bypass the BIH_NO_FSYNC
// gate, the EINTR retry loop and the fault-injection hooks that make crash
// testing deterministic.
#include <cstdio>

void PersistSomehow(std::FILE* f, int fd) {
  std::fflush(f);
  (void)fd;
}
