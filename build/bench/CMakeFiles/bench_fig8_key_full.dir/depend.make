# Empty dependencies file for bench_fig8_key_full.
# This may be replaced when dependencies are built.
